(* The batched multi-query session layer: Client.query_batch must serve
   every member exactly as a sequential Client.query would — same paths,
   same per-member adversary trace, same constant telemetry shape — while
   the merged oblivious-store passes amortize the PIR cost (Table 2) as
   the batch grows. *)

module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module Batcher = Psp_pir.Batcher
module F = Psp_fault.Fault
open Psp_core

let key = Psp_crypto.Sha256.digest_string "batch tests"
let cost = Psp_pir.Cost_model.ibm4764
let page_size = 256

let network ?(nodes = 150) ?(seed = 11) () =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes;
      edges = nodes + (nodes / 8);
      width = 1000.0;
      height = 1000.0;
      seed }

let g = network ()
let queries = Psp_netgen.Synthetic.random_queries g ~count:24 ~seed:7

let databases =
  lazy
    (let lm, _ = DB.build_lm ~anchors:4 ~seed:2 ~page_size g in
     let af, _ = DB.build_af ~target_regions:14 ~page_size g in
     let calib = Psp_netgen.Synthetic.random_queries g ~count:50 ~seed:33 in
     [ ("CI", DB.build_ci ~page_size g);
       ("PI", DB.build_pi ~page_size g);
       ("HY", DB.build_hy ~threshold:5 ~page_size g);
       ("PI*", DB.build_pi_star ~cluster:2 ~page_size g);
       ("LM", Calibrate.lm lm ~queries:calib);
       ("AF", Calibrate.af af ~queries:calib) ])

let server_of db = Server.create ~cost ~key (DB.files db)
let close_cost got truth = Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth

let check_paths_match name (seq : Client.result) (batch : Client.result) =
  match (seq.Client.path, batch.Client.path) with
  | None, None -> ()
  | Some (p1, c1), Some (p2, c2) ->
      Alcotest.(check (list int)) (name ^ ": same node sequence") p1 p2;
      Alcotest.(check bool) (name ^ ": same cost") true (close_cost c1 c2)
  | _ -> Alcotest.fail (name ^ ": sequential and batched answers disagree")

(* ------------------------------------------------------------------ *)
(* Batch vs sequential equivalence, for every scheme: identical paths
   and identical per-member adversary traces. *)

let test_equivalence () =
  List.iter
    (fun (name, db) ->
      let pairs = Array.sub queries 0 6 in
      let server = server_of db in
      let sequential = Array.map (fun (s, t) -> Client.query_nodes server g s t) pairs in
      let server = server_of db in
      let batched = Client.query_nodes_batch server g pairs in
      Alcotest.(check int) (name ^ ": one result per member") (Array.length pairs)
        (Array.length batched);
      Array.iteri
        (fun i seq ->
          let b = batched.(i) in
          check_paths_match (Printf.sprintf "%s[%d]" name i) seq b;
          Alcotest.(check string)
            (Printf.sprintf "%s[%d]: member trace equals sequential trace" name i)
            (Psp_pir.Trace.fingerprint seq.Client.stats.Session.trace)
            (Psp_pir.Trace.fingerprint b.Client.stats.Session.trace);
          Alcotest.(check int)
            (Printf.sprintf "%s[%d]: same region budget" name i)
            seq.Client.regions_fetched b.Client.regions_fetched)
        sequential)
    (Lazy.force databases)

(* Members of one batch must be mutually indistinguishable too — the
   whole premise of merging them into one oblivious pass. *)
let test_members_indistinguishable () =
  List.iter
    (fun (name, db) ->
      let server = server_of db in
      let batched = Client.query_nodes_batch server g (Array.sub queries 0 5) in
      let traces =
        Array.to_list
          (Array.map (fun (r : Client.result) -> r.Client.stats.Session.trace) batched)
      in
      match Privacy.indistinguishable traces with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s: batch members leak: %s" name e))
    (Lazy.force databases)

(* ------------------------------------------------------------------ *)
(* Correctness of answers straight from the batch, against the oracle. *)

let test_batch_correct () =
  List.iter
    (fun (name, db) ->
      let server = server_of db in
      let pairs = Array.sub queries 0 8 in
      let batched = Client.query_nodes_batch server g pairs in
      Array.iteri
        (fun i (r : Client.result) ->
          let s, t = pairs.(i) in
          let truth = Psp_graph.Dijkstra.distance g s t in
          match r.Client.path with
          | None -> Alcotest.fail (Printf.sprintf "%s: no path %d->%d" name s t)
          | Some (_, got) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %d->%d exact" name s t)
                true (close_cost got truth))
        batched)
    (Lazy.force databases)

(* query_nodes (the sequential convenience wrapper) resolves coordinates
   through the graph and must agree with a raw coordinate query. *)
let test_query_nodes () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  Array.iter
    (fun (s, t) ->
      let by_nodes = Client.query_nodes server g s t in
      let sx, sy = Psp_graph.Graph.coords g s in
      let tx, ty = Psp_graph.Graph.coords g t in
      let by_coords = Client.query server ~sx ~sy ~tx ~ty in
      check_paths_match "query_nodes vs query" by_nodes by_coords)
    (Array.sub queries 0 5)

(* ------------------------------------------------------------------ *)
(* Cost model: a width-1 batch costs exactly a sequential query; wider
   batches amortize the per-query PIR time strictly. *)

let test_width_one_cost () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let s, t = queries.(0) in
  let seq = Client.query_nodes (server_of db) g s t in
  let batched = Client.query_nodes_batch (server_of db) g [| (s, t) |] in
  Alcotest.(check int) "one member" 1 (Array.length batched);
  Alcotest.(check (float 1e-9))
    "width-1 batch pir_seconds = sequential"
    seq.Client.stats.Session.pir_seconds
    batched.(0).Client.stats.Session.pir_seconds

let test_amortization () =
  List.iter
    (fun (name, db) ->
      let widths = [ 1; 2; 4; 8 ] in
      let per_query =
        List.map
          (fun w ->
            let pairs = Array.init w (fun i -> queries.(i mod Array.length queries)) in
            let rs = Client.query_nodes_batch (server_of db) g pairs in
            Array.fold_left
              (fun acc (r : Client.result) -> acc +. r.Client.stats.Session.pir_seconds)
              0.0 rs
            /. float_of_int w)
          widths
      in
      let rec strictly_decreasing = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: amortized PIR time decreases with batch size" name)
              true (b < a);
            strictly_decreasing rest
        | _ -> ()
      in
      strictly_decreasing per_query)
    [ ("CI", List.assoc "CI" (Lazy.force databases));
      ("HY", List.assoc "HY" (Lazy.force databases)) ]

(* ------------------------------------------------------------------ *)
(* Constant telemetry shape: batched same-plan queries must leave the
   same registry shape as sequential ones (DESIGN.md §5). *)

let test_batch_shape () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let shape_of f =
    Psp_obs.Obs.reset ();
    f ();
    Psp_obs.Obs.shape ()
  in
  let server = server_of db in
  let s1 =
    shape_of (fun () ->
        Array.iter
          (fun (s, t) -> ignore (Client.query_nodes server g s t))
          (Array.sub queries 0 3))
  in
  let server = server_of db in
  let s2 =
    shape_of (fun () -> ignore (Client.query_nodes_batch server g (Array.sub queries 0 3)))
  in
  let server = server_of db in
  let s3 =
    shape_of (fun () -> ignore (Client.query_nodes_batch server g (Array.sub queries 3 3)))
  in
  (* same plan and same (public) width => byte-identical registry shape,
     whatever the members' secret endpoints are; sequential runs differ
     only by the batch-only instruments *)
  Alcotest.(check string) "same shape across same-width batches" s2 s3;
  Alcotest.(check bool) "shapes non-empty" true (String.length s1 > 0)

(* ------------------------------------------------------------------ *)
(* Failure handling: a hostile schedule exhausts the retry budget and
   degrades every member to Unavailable identically. *)

let test_batch_unavailable () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  F.arm "pir.fetch.transient" F.Always;
  Fun.protect ~finally:F.reset (fun () ->
      let retry = { Client.max_attempts = 3; base_backoff = 0.05 } in
      let batched = Client.query_nodes_batch ~retry server g (Array.sub queries 0 3) in
      Array.iter
        (fun (r : Client.result) ->
          match r.Client.status with
          | Client.Unavailable { point = "pir.fetch.transient"; attempts = 3 } ->
              Alcotest.(check bool) "no path" true (r.Client.path = None)
          | _ -> Alcotest.fail "expected every member Unavailable at the failpoint")
        batched)

(* A finite hostile prefix degrades but still serves — and members stay
   mutually indistinguishable because retries are batch-granular. *)
let test_batch_degraded_indistinguishable () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  F.arm "pir.fetch.transient" (F.Hits [ 2; 5 ]);
  Fun.protect ~finally:F.reset (fun () ->
      let pairs = Array.sub queries 0 4 in
      let batched = Client.query_nodes_batch server g pairs in
      Array.iteri
        (fun i (r : Client.result) ->
          let s, t = pairs.(i) in
          let truth = Psp_graph.Dijkstra.distance g s t in
          (match r.Client.path with
          | Some (_, got) ->
              Alcotest.(check bool) "correct under faults" true (close_cost got truth)
          | None -> Alcotest.fail "no path under recoverable faults");
          match r.Client.status with
          | Client.Degraded _ | Client.Served -> ()
          | _ -> Alcotest.fail "expected Served/Degraded under a finite schedule")
        batched;
      let traces =
        Array.to_list
          (Array.map (fun (r : Client.result) -> r.Client.stats.Session.trace) batched)
      in
      match Privacy.indistinguishable traces with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("members diverged under faults: " ^ e))

(* 32-seed sweep: each seed derives a recoverable fault schedule and a
   fresh 3-member batch — the members must stay mutually
   indistinguishable, and two different batches under the same replayed
   schedule must expose identical per-member traces. *)
let test_batch_seed_sweep () =
  let db = List.assoc "CI" (Lazy.force databases) in
  for seed = 0 to 31 do
    let rng = Psp_util.Rng.create (0xba7c4 + seed) in
    let pick n = 1 + Psp_util.Rng.int rng n in
    let arms =
      List.filteri
        (fun i _ -> i = seed mod 2 || Psp_util.Rng.int rng 2 = 0)
        [ ("pir.fetch.transient", F.Hits [ pick 6; 6 + pick 6 ]);
          ("pir.fetch.corrupt", F.Hits [ pick 10 ]) ]
    in
    List.iter (fun (p, s) -> F.arm p s) arms;
    Fun.protect ~finally:F.reset (fun () ->
        let run pairs =
          F.rewind ();
          let batched = Client.query_nodes_batch (server_of db) g pairs in
          let traces =
            Array.to_list
              (Array.map
                 (fun (r : Client.result) -> r.Client.stats.Session.trace)
                 batched)
          in
          (match Privacy.indistinguishable traces with
          | Ok () -> ()
          | Error e ->
              Alcotest.fail (Printf.sprintf "seed %d: members diverged: %s" seed e));
          List.map Psp_pir.Trace.fingerprint traces
        in
        let a = run (Array.sub queries 0 3) and b = run (Array.sub queries 3 3) in
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: distinct batches, equal traces" seed)
          a b)
  done

(* ------------------------------------------------------------------ *)
(* The executed merged pass: width-k fetch_many must leave per-member
   slot traces byte-identical to k sequential reads, and its executed
   page-touch count must equal the cost model's batched basis. *)

module OS = Psp_pir.Oblivious_store
module PS = Psp_pir.Pyramid_store
module CM = Psp_pir.Cost_model

let make_file ?(name = "data") ~pages ~page_size () =
  let f = PF.create ~name ~page_size in
  for i = 0 to pages - 1 do
    ignore (PF.append f (Bytes.of_string (Printf.sprintf "page-%06d" i)))
  done;
  f

(* Capture, on a twin store, each member's own sequential event list
   (clearing the trace between reads), together with its payload. *)
let sequential_members ~read ~clear ~trace store ids =
  Array.map
    (fun id ->
      clear store;
      let page = read store id in
      (page, trace store))
    ids

(* Pyramid: the merged trace must be, per flush-cadence chunk, the
   level-major reorder of the members' sequential traces — each level
   scan touches the chunk's planned slots in member order — with the
   flush's rebuild events (recorded by the chunk's last member
   sequentially) following the chunk, as they do sequentially. *)
let test_pyramid_fetch_many_trace () =
  let pages = 60 and page_size = 32 in
  (* duplicates (in and across chunks) exercise the pending/cache routing *)
  let ids = [| 3; 41; 3; 17; 59; 0; 41; 8; 3 |] in
  let mk () = PS.create ~key (make_file ~pages ~page_size ()) in
  let seq = mk () and mrg = mk () in
  let members =
    sequential_members ~read:PS.read ~clear:PS.clear_trace ~trace:PS.physical_trace
      seq ids
  in
  PS.clear_trace mrg;
  let got = PS.fetch_many mrg ids in
  Array.iteri
    (fun m (page, _) ->
      Alcotest.(check string)
        (Printf.sprintf "member %d payload equals sequential" m)
        (Bytes.to_string page)
        (Bytes.to_string got.(m)))
    members;
  let cap = PS.cache_capacity mrg and nlevels = PS.level_count mrg in
  let k = Array.length ids in
  let expected = ref [] in
  let base = ref 0 in
  while !base < k do
    let chunk = min (k - !base) cap in
    for l = 0 to nlevels - 1 do
      for m = !base to !base + chunk - 1 do
        let _, tr = members.(m) in
        expected := List.nth tr l :: !expected
      done
    done;
    for m = !base to !base + chunk - 1 do
      let _, tr = members.(m) in
      List.iteri (fun i e -> if i >= nlevels then expected := e :: !expected) tr
    done;
    base := !base + chunk
  done;
  Alcotest.(check bool)
    "merged trace = level-major reorder of the sequential member traces" true
    (PS.physical_trace mrg = List.rev !expected)

(* Square-root: the merged sweep visits slots in member order, so the
   merged trace equals the plain concatenation of the members'
   sequential traces (reshuffles included, at the same positions). *)
let test_sqrt_fetch_many_trace () =
  let pages = 25 in
  let ids = [| 5; 19; 5; 0; 24; 19; 7; 3; 3; 11 |] in
  let mk () = OS.create ~key (make_file ~pages ~page_size:32 ()) in
  let seq = mk () and mrg = mk () in
  let members =
    sequential_members ~read:OS.read ~clear:OS.clear_trace ~trace:OS.physical_trace
      seq ids
  in
  OS.clear_trace mrg;
  let got = OS.fetch_many mrg ids in
  Array.iteri
    (fun m (page, _) ->
      Alcotest.(check string)
        (Printf.sprintf "member %d payload equals sequential" m)
        (Bytes.to_string page)
        (Bytes.to_string got.(m)))
    members;
  let expected = List.concat_map snd (Array.to_list members) in
  Alcotest.(check bool)
    "merged trace = concatenation of the sequential member traces" true
    (OS.physical_trace mrg = expected)

(* The executed page-touch count is the cost model's basis, width by
   width: a width-k pass touches one slot per level per member — the
   first member's pass plus batch_probe_touches marginal ones — and
   scans each level once per flush-cadence chunk. *)
let test_executed_touches_match_basis () =
  let pages = 60 in
  List.iter
    (fun batch ->
      let s = PS.create ~key (make_file ~pages ~page_size:32 ()) in
      let levels = PS.level_count s in
      Alcotest.(check int) "store depth = Cost_model.pyramid_levels"
        (CM.pyramid_levels ~cache_capacity:PS.default_cache_capacity ~file_pages:pages)
        levels;
      let touches0 = PS.slot_touches s and scans0 = PS.level_scans s in
      let ids = Array.init batch (fun i -> (i * 7) mod pages) in
      ignore (PS.fetch_many s ids);
      Alcotest.(check int)
        (Printf.sprintf "width %d: executed touches = levels + marginal basis" batch)
        (levels + CM.batch_probe_touches ~levels ~batch)
        (PS.slot_touches s - touches0);
      let cap = PS.cache_capacity s in
      Alcotest.(check int)
        (Printf.sprintf "width %d: one scan per level per chunk" batch)
        (levels * ((batch + cap - 1) / cap))
        (PS.level_scans s - scans0))
    [ 1; 4; 16 ]

(* Through the server: a `Pyramid batch executes levels·width touches,
   and the simulated charge the members share is exactly the batched
   pass cost derived from the same levels — executed and simulated
   agree by construction. *)
let test_server_executed_vs_simulated () =
  let pages = 60 in
  List.iter
    (fun width ->
      let f = make_file ~name:"file" ~pages ~page_size:32 () in
      let server = Server.create ~mode:`Pyramid ~cost ~key [ f ] in
      let levels =
        CM.pyramid_levels ~cache_capacity:PS.default_cache_capacity ~file_pages:pages
      in
      let b = Batcher.start server ~width in
      let touches0 = Server.executed_slot_touches server in
      let scans0 = Server.executed_level_scans server in
      ignore
        (Batcher.fetch b ~file:"file" ~pages:(Array.init width (fun i -> (3 * i) mod pages)));
      Alcotest.(check int)
        (Printf.sprintf "width %d: executed touches = levels * width" width)
        (levels * width)
        (Server.executed_slot_touches server - touches0);
      Alcotest.(check bool) "level scans executed" true
        (Server.executed_level_scans server - scans0 >= levels);
      let stats = Batcher.finish b in
      let charged =
        Array.fold_left
          (fun acc (s : Session.stats) -> acc +. s.Session.pir_seconds)
          0.0 stats
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "width %d: members' charges sum to the batched pass cost" width)
        (CM.pir_batch_fetch_seconds cost ~file_pages:pages ~levels ~batch:width)
        charged)
    [ 1; 4; 16 ]

(* Fault-schedule sweep over the merged executed pass: with a `Pyramid
   server the batch members must stay correct and mutually
   indistinguishable under recoverable schedules, exactly as in
   `Simulated mode. *)
let test_executed_fault_sweep () =
  let db = List.assoc "CI" (Lazy.force databases) in
  for seed = 0 to 7 do
    let rng = Psp_util.Rng.create (0x9a7e + seed) in
    let pick n = 1 + Psp_util.Rng.int rng n in
    List.iter
      (fun (p, s) -> F.arm p s)
      [ ("pir.fetch.transient", F.Hits [ pick 6 ]);
        ("pir.fetch.corrupt", F.Hits [ 6 + pick 6 ]) ];
    Fun.protect ~finally:F.reset (fun () ->
        F.rewind ();
        let server = Server.create ~mode:`Pyramid ~cost ~key (DB.files db) in
        let pairs = Array.sub queries 0 3 in
        let batched = Client.query_nodes_batch server g pairs in
        Array.iteri
          (fun i (r : Client.result) ->
            let s, t = pairs.(i) in
            let truth = Psp_graph.Dijkstra.distance g s t in
            match r.Client.path with
            | Some (_, got) ->
                Alcotest.(check bool)
                  (Printf.sprintf "seed %d: member %d correct under faults" seed i)
                  true (close_cost got truth)
            | None -> Alcotest.fail (Printf.sprintf "seed %d: no path" seed))
          batched;
        let traces =
          Array.to_list
            (Array.map (fun (r : Client.result) -> r.Client.stats.Session.trace) batched)
        in
        match Privacy.indistinguishable traces with
        | Ok () -> ()
        | Error e ->
            Alcotest.fail
              (Printf.sprintf "seed %d: members diverged on the executed pass: %s" seed e))
  done

(* ------------------------------------------------------------------ *)
(* An unknown scheme tag surfaces as a typed status — batch included. *)

let test_batch_unknown_scheme () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let bad_header = { db.DB.header with Psp_index.Header.scheme = "??" } in
  let header_file = Psp_index.Header.to_page_file bad_header ~page_size in
  let files =
    header_file :: List.filter (fun f -> PF.name f <> "header") (DB.files db)
  in
  let server = Server.create ~cost ~key files in
  let batched = Client.query_nodes_batch server g (Array.sub queries 0 3) in
  Array.iter
    (fun (r : Client.result) ->
      match r.Client.status with
      | Client.Unknown_scheme { scheme = "??" } ->
          Alcotest.(check bool) "no path" true (r.Client.path = None)
      | _ -> Alcotest.fail "expected Unknown_scheme status for every member")
    batched

(* Degenerate widths. *)
let test_batch_edges () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  Alcotest.(check int) "empty batch" 0
    (Array.length (Client.query_batch server [||]));
  (match Batcher.start server ~width:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for width 0")

let () =
  Alcotest.run "batch"
    [ ( "equivalence",
        [ Alcotest.test_case "batch = sequential (paths, traces)" `Slow test_equivalence;
          Alcotest.test_case "members mutually indistinguishable" `Quick
            test_members_indistinguishable;
          Alcotest.test_case "batched answers exact" `Slow test_batch_correct;
          Alcotest.test_case "query_nodes = query" `Quick test_query_nodes ] );
      ( "cost",
        [ Alcotest.test_case "width-1 batch = sequential cost" `Quick test_width_one_cost;
          Alcotest.test_case "amortization" `Quick test_amortization ] );
      ( "telemetry",
        [ Alcotest.test_case "constant shape across batches" `Quick test_batch_shape ] );
      ( "failure",
        [ Alcotest.test_case "hostile schedule: all Unavailable" `Quick
            test_batch_unavailable;
          Alcotest.test_case "degraded but indistinguishable" `Quick
            test_batch_degraded_indistinguishable;
          Alcotest.test_case "32-seed schedule sweep" `Slow test_batch_seed_sweep ] );
      ( "executed",
        [ Alcotest.test_case "pyramid fetch_many trace = sequential" `Quick
            test_pyramid_fetch_many_trace;
          Alcotest.test_case "sqrt fetch_many trace = sequential" `Quick
            test_sqrt_fetch_many_trace;
          Alcotest.test_case "executed touches = cost basis (widths 1/4/16)" `Quick
            test_executed_touches_match_basis;
          Alcotest.test_case "server executed = simulated (widths 1/4/16)" `Quick
            test_server_executed_vs_simulated;
          Alcotest.test_case "fault sweep over the executed pass" `Slow
            test_executed_fault_sweep ] );
      ( "dispatch",
        [ Alcotest.test_case "unknown scheme status" `Quick test_batch_unknown_scheme;
          Alcotest.test_case "degenerate widths" `Quick test_batch_edges ] ) ]
