(* The batched multi-query session layer: Client.query_batch must serve
   every member exactly as a sequential Client.query would — same paths,
   same per-member adversary trace, same constant telemetry shape — while
   the merged oblivious-store passes amortize the PIR cost (Table 2) as
   the batch grows. *)

module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module Batcher = Psp_pir.Batcher
module F = Psp_fault.Fault
open Psp_core

let key = Psp_crypto.Sha256.digest_string "batch tests"
let cost = Psp_pir.Cost_model.ibm4764
let page_size = 256

let network ?(nodes = 150) ?(seed = 11) () =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes;
      edges = nodes + (nodes / 8);
      width = 1000.0;
      height = 1000.0;
      seed }

let g = network ()
let queries = Psp_netgen.Synthetic.random_queries g ~count:24 ~seed:7

let databases =
  lazy
    (let lm, _ = DB.build_lm ~anchors:4 ~seed:2 ~page_size g in
     let af, _ = DB.build_af ~target_regions:14 ~page_size g in
     let calib = Psp_netgen.Synthetic.random_queries g ~count:50 ~seed:33 in
     [ ("CI", DB.build_ci ~page_size g);
       ("PI", DB.build_pi ~page_size g);
       ("HY", DB.build_hy ~threshold:5 ~page_size g);
       ("PI*", DB.build_pi_star ~cluster:2 ~page_size g);
       ("LM", Calibrate.lm lm ~queries:calib);
       ("AF", Calibrate.af af ~queries:calib) ])

let server_of db = Server.create ~cost ~key (DB.files db)
let close_cost got truth = Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth

let check_paths_match name (seq : Client.result) (batch : Client.result) =
  match (seq.Client.path, batch.Client.path) with
  | None, None -> ()
  | Some (p1, c1), Some (p2, c2) ->
      Alcotest.(check (list int)) (name ^ ": same node sequence") p1 p2;
      Alcotest.(check bool) (name ^ ": same cost") true (close_cost c1 c2)
  | _ -> Alcotest.fail (name ^ ": sequential and batched answers disagree")

(* ------------------------------------------------------------------ *)
(* Batch vs sequential equivalence, for every scheme: identical paths
   and identical per-member adversary traces. *)

let test_equivalence () =
  List.iter
    (fun (name, db) ->
      let pairs = Array.sub queries 0 6 in
      let server = server_of db in
      let sequential = Array.map (fun (s, t) -> Client.query_nodes server g s t) pairs in
      let server = server_of db in
      let batched = Client.query_nodes_batch server g pairs in
      Alcotest.(check int) (name ^ ": one result per member") (Array.length pairs)
        (Array.length batched);
      Array.iteri
        (fun i seq ->
          let b = batched.(i) in
          check_paths_match (Printf.sprintf "%s[%d]" name i) seq b;
          Alcotest.(check string)
            (Printf.sprintf "%s[%d]: member trace equals sequential trace" name i)
            (Psp_pir.Trace.fingerprint seq.Client.stats.Session.trace)
            (Psp_pir.Trace.fingerprint b.Client.stats.Session.trace);
          Alcotest.(check int)
            (Printf.sprintf "%s[%d]: same region budget" name i)
            seq.Client.regions_fetched b.Client.regions_fetched)
        sequential)
    (Lazy.force databases)

(* Members of one batch must be mutually indistinguishable too — the
   whole premise of merging them into one oblivious pass. *)
let test_members_indistinguishable () =
  List.iter
    (fun (name, db) ->
      let server = server_of db in
      let batched = Client.query_nodes_batch server g (Array.sub queries 0 5) in
      let traces =
        Array.to_list
          (Array.map (fun (r : Client.result) -> r.Client.stats.Session.trace) batched)
      in
      match Privacy.indistinguishable traces with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s: batch members leak: %s" name e))
    (Lazy.force databases)

(* ------------------------------------------------------------------ *)
(* Correctness of answers straight from the batch, against the oracle. *)

let test_batch_correct () =
  List.iter
    (fun (name, db) ->
      let server = server_of db in
      let pairs = Array.sub queries 0 8 in
      let batched = Client.query_nodes_batch server g pairs in
      Array.iteri
        (fun i (r : Client.result) ->
          let s, t = pairs.(i) in
          let truth = Psp_graph.Dijkstra.distance g s t in
          match r.Client.path with
          | None -> Alcotest.fail (Printf.sprintf "%s: no path %d->%d" name s t)
          | Some (_, got) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %d->%d exact" name s t)
                true (close_cost got truth))
        batched)
    (Lazy.force databases)

(* query_nodes (the sequential convenience wrapper) resolves coordinates
   through the graph and must agree with a raw coordinate query. *)
let test_query_nodes () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  Array.iter
    (fun (s, t) ->
      let by_nodes = Client.query_nodes server g s t in
      let sx, sy = Psp_graph.Graph.coords g s in
      let tx, ty = Psp_graph.Graph.coords g t in
      let by_coords = Client.query server ~sx ~sy ~tx ~ty in
      check_paths_match "query_nodes vs query" by_nodes by_coords)
    (Array.sub queries 0 5)

(* ------------------------------------------------------------------ *)
(* Cost model: a width-1 batch costs exactly a sequential query; wider
   batches amortize the per-query PIR time strictly. *)

let test_width_one_cost () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let s, t = queries.(0) in
  let seq = Client.query_nodes (server_of db) g s t in
  let batched = Client.query_nodes_batch (server_of db) g [| (s, t) |] in
  Alcotest.(check int) "one member" 1 (Array.length batched);
  Alcotest.(check (float 1e-9))
    "width-1 batch pir_seconds = sequential"
    seq.Client.stats.Session.pir_seconds
    batched.(0).Client.stats.Session.pir_seconds

let test_amortization () =
  List.iter
    (fun (name, db) ->
      let widths = [ 1; 2; 4; 8 ] in
      let per_query =
        List.map
          (fun w ->
            let pairs = Array.init w (fun i -> queries.(i mod Array.length queries)) in
            let rs = Client.query_nodes_batch (server_of db) g pairs in
            Array.fold_left
              (fun acc (r : Client.result) -> acc +. r.Client.stats.Session.pir_seconds)
              0.0 rs
            /. float_of_int w)
          widths
      in
      let rec strictly_decreasing = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: amortized PIR time decreases with batch size" name)
              true (b < a);
            strictly_decreasing rest
        | _ -> ()
      in
      strictly_decreasing per_query)
    [ ("CI", List.assoc "CI" (Lazy.force databases));
      ("HY", List.assoc "HY" (Lazy.force databases)) ]

(* ------------------------------------------------------------------ *)
(* Constant telemetry shape: batched same-plan queries must leave the
   same registry shape as sequential ones (DESIGN.md §5). *)

let test_batch_shape () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let shape_of f =
    Psp_obs.Obs.reset ();
    f ();
    Psp_obs.Obs.shape ()
  in
  let server = server_of db in
  let s1 =
    shape_of (fun () ->
        Array.iter
          (fun (s, t) -> ignore (Client.query_nodes server g s t))
          (Array.sub queries 0 3))
  in
  let server = server_of db in
  let s2 =
    shape_of (fun () -> ignore (Client.query_nodes_batch server g (Array.sub queries 0 3)))
  in
  let server = server_of db in
  let s3 =
    shape_of (fun () -> ignore (Client.query_nodes_batch server g (Array.sub queries 3 3)))
  in
  (* same plan and same (public) width => byte-identical registry shape,
     whatever the members' secret endpoints are; sequential runs differ
     only by the batch-only instruments *)
  Alcotest.(check string) "same shape across same-width batches" s2 s3;
  Alcotest.(check bool) "shapes non-empty" true (String.length s1 > 0)

(* ------------------------------------------------------------------ *)
(* Failure handling: a hostile schedule exhausts the retry budget and
   degrades every member to Unavailable identically. *)

let test_batch_unavailable () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  F.arm "pir.fetch.transient" F.Always;
  Fun.protect ~finally:F.reset (fun () ->
      let retry = { Client.max_attempts = 3; base_backoff = 0.05 } in
      let batched = Client.query_nodes_batch ~retry server g (Array.sub queries 0 3) in
      Array.iter
        (fun (r : Client.result) ->
          match r.Client.status with
          | Client.Unavailable { point = "pir.fetch.transient"; attempts = 3 } ->
              Alcotest.(check bool) "no path" true (r.Client.path = None)
          | _ -> Alcotest.fail "expected every member Unavailable at the failpoint")
        batched)

(* A finite hostile prefix degrades but still serves — and members stay
   mutually indistinguishable because retries are batch-granular. *)
let test_batch_degraded_indistinguishable () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  F.arm "pir.fetch.transient" (F.Hits [ 2; 5 ]);
  Fun.protect ~finally:F.reset (fun () ->
      let pairs = Array.sub queries 0 4 in
      let batched = Client.query_nodes_batch server g pairs in
      Array.iteri
        (fun i (r : Client.result) ->
          let s, t = pairs.(i) in
          let truth = Psp_graph.Dijkstra.distance g s t in
          (match r.Client.path with
          | Some (_, got) ->
              Alcotest.(check bool) "correct under faults" true (close_cost got truth)
          | None -> Alcotest.fail "no path under recoverable faults");
          match r.Client.status with
          | Client.Degraded _ | Client.Served -> ()
          | _ -> Alcotest.fail "expected Served/Degraded under a finite schedule")
        batched;
      let traces =
        Array.to_list
          (Array.map (fun (r : Client.result) -> r.Client.stats.Session.trace) batched)
      in
      match Privacy.indistinguishable traces with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("members diverged under faults: " ^ e))

(* 32-seed sweep: each seed derives a recoverable fault schedule and a
   fresh 3-member batch — the members must stay mutually
   indistinguishable, and two different batches under the same replayed
   schedule must expose identical per-member traces. *)
let test_batch_seed_sweep () =
  let db = List.assoc "CI" (Lazy.force databases) in
  for seed = 0 to 31 do
    let rng = Psp_util.Rng.create (0xba7c4 + seed) in
    let pick n = 1 + Psp_util.Rng.int rng n in
    let arms =
      List.filteri
        (fun i _ -> i = seed mod 2 || Psp_util.Rng.int rng 2 = 0)
        [ ("pir.fetch.transient", F.Hits [ pick 6; 6 + pick 6 ]);
          ("pir.fetch.corrupt", F.Hits [ pick 10 ]) ]
    in
    List.iter (fun (p, s) -> F.arm p s) arms;
    Fun.protect ~finally:F.reset (fun () ->
        let run pairs =
          F.rewind ();
          let batched = Client.query_nodes_batch (server_of db) g pairs in
          let traces =
            Array.to_list
              (Array.map
                 (fun (r : Client.result) -> r.Client.stats.Session.trace)
                 batched)
          in
          (match Privacy.indistinguishable traces with
          | Ok () -> ()
          | Error e ->
              Alcotest.fail (Printf.sprintf "seed %d: members diverged: %s" seed e));
          List.map Psp_pir.Trace.fingerprint traces
        in
        let a = run (Array.sub queries 0 3) and b = run (Array.sub queries 3 3) in
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: distinct batches, equal traces" seed)
          a b)
  done

(* ------------------------------------------------------------------ *)
(* An unknown scheme tag surfaces as a typed status — batch included. *)

let test_batch_unknown_scheme () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let bad_header = { db.DB.header with Psp_index.Header.scheme = "??" } in
  let header_file = Psp_index.Header.to_page_file bad_header ~page_size in
  let files =
    header_file :: List.filter (fun f -> PF.name f <> "header") (DB.files db)
  in
  let server = Server.create ~cost ~key files in
  let batched = Client.query_nodes_batch server g (Array.sub queries 0 3) in
  Array.iter
    (fun (r : Client.result) ->
      match r.Client.status with
      | Client.Unknown_scheme { scheme = "??" } ->
          Alcotest.(check bool) "no path" true (r.Client.path = None)
      | _ -> Alcotest.fail "expected Unknown_scheme status for every member")
    batched

(* Degenerate widths. *)
let test_batch_edges () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  Alcotest.(check int) "empty batch" 0
    (Array.length (Client.query_batch server [||]));
  (match Batcher.start server ~width:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for width 0")

let () =
  Alcotest.run "batch"
    [ ( "equivalence",
        [ Alcotest.test_case "batch = sequential (paths, traces)" `Slow test_equivalence;
          Alcotest.test_case "members mutually indistinguishable" `Quick
            test_members_indistinguishable;
          Alcotest.test_case "batched answers exact" `Slow test_batch_correct;
          Alcotest.test_case "query_nodes = query" `Quick test_query_nodes ] );
      ( "cost",
        [ Alcotest.test_case "width-1 batch = sequential cost" `Quick test_width_one_cost;
          Alcotest.test_case "amortization" `Quick test_amortization ] );
      ( "telemetry",
        [ Alcotest.test_case "constant shape across batches" `Quick test_batch_shape ] );
      ( "failure",
        [ Alcotest.test_case "hostile schedule: all Unavailable" `Quick
            test_batch_unavailable;
          Alcotest.test_case "degraded but indistinguishable" `Quick
            test_batch_degraded_indistinguishable;
          Alcotest.test_case "32-seed schedule sweep" `Slow test_batch_seed_sweep ] );
      ( "dispatch",
        [ Alcotest.test_case "unknown scheme status" `Quick test_batch_unknown_scheme;
          Alcotest.test_case "degenerate widths" `Quick test_batch_edges ] ) ]
