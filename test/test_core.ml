(* End-to-end protocol tests: every scheme answers correctly, every
   query is indistinguishable from every other (Theorem 1), traces
   conform to the published plan, the oblivious execution mode works,
   and the response-time model behaves. *)

module G = Psp_graph.Graph
module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module QP = Psp_index.Query_plan
open Psp_core

let key = Psp_crypto.Sha256.digest_string "core tests"
let cost = Psp_pir.Cost_model.ibm4764
let page_size = 512

let network ?(nodes = 350) ?(seed = 17) () =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes;
      edges = nodes + (nodes / 8);
      width = 1000.0;
      height = 1000.0;
      seed }

let g = network ()
let queries = Psp_netgen.Synthetic.random_queries g ~count:50 ~seed:33

let databases =
  lazy
    (let lm, _ = DB.build_lm ~anchors:4 ~seed:2 ~page_size g in
     let af, _ = DB.build_af ~target_regions:14 ~page_size g in
     [ ("CI", DB.build_ci ~page_size g);
       ("PI", DB.build_pi ~page_size g);
       ("HY", DB.build_hy ~threshold:5 ~page_size g);
       ("PI*", DB.build_pi_star ~cluster:2 ~page_size g);
       ("LM", Calibrate.lm lm ~queries);
       ("AF", Calibrate.af af ~queries) ])

let close_cost got truth = Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth

let run_workload db =
  let server = Server.create ~cost ~key (DB.files db) in
  Array.to_list (Array.map (fun (s, t) -> ((s, t), Client.query_nodes server g s t)) queries)

(* ------------------------------------------------------------------ *)

let test_scheme_correct name () =
  let db = List.assoc name (Lazy.force databases) in
  List.iter
    (fun ((s, t), (r : Client.result)) ->
      let truth = Psp_graph.Dijkstra.distance g s t in
      match r.Client.path with
      | None -> Alcotest.fail (Printf.sprintf "%s: no path %d->%d" name s t)
      | Some (nodes, got) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %d->%d cost %.4f = %.4f" name s t got truth)
            true (close_cost got truth);
          Alcotest.(check int) "starts at s" s (List.hd nodes);
          Alcotest.(check int) "ends at t" t (List.nth nodes (List.length nodes - 1));
          (* the returned node sequence is a real path in the network *)
          let rec walk = function
            | [] | [ _ ] -> ()
            | u :: (v :: _ as rest) ->
                let connected = G.fold_out g u (fun acc e -> acc || e.G.dst = v) false in
                Alcotest.(check bool) (Printf.sprintf "edge %d->%d exists" u v) true connected;
                walk rest
          in
          walk nodes)
    (run_workload db)

let test_scheme_private name () =
  let db = List.assoc name (Lazy.force databases) in
  let results = run_workload db in
  let traces =
    List.map (fun (_, (r : Client.result)) -> r.Client.stats.Session.trace) results
  in
  (match Privacy.indistinguishable traces with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e));
  let header_pages = PF.page_count db.DB.header_file in
  match Privacy.conforms db.DB.header ~header_pages (List.hd traces) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e)

let test_scheme_rounds name expected () =
  let db = List.assoc name (Lazy.force databases) in
  let server = Server.create ~cost ~key (DB.files db) in
  let s, t = queries.(0) in
  let r = Client.query_nodes server g s t in
  Alcotest.(check int) "round count" expected r.Client.stats.Session.rounds

let test_self_query () =
  (* s = t: still a full, plan-conformant execution *)
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = Server.create ~cost ~key (DB.files db) in
  let r = Client.query_nodes server g 5 5 in
  (match r.Client.path with
  | Some ([ v ], c) ->
      Alcotest.(check int) "self node" 5 v;
      Alcotest.(check (float 0.0)) "zero cost" 0.0 c
  | _ -> Alcotest.fail "expected trivial path");
  let header_pages = PF.page_count db.DB.header_file in
  match Privacy.conforms db.DB.header ~header_pages r.Client.stats.Session.trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_same_region_query () =
  (* two nodes of the same region *)
  let db = List.assoc "PI" (Lazy.force databases) in
  let part = db.DB.partition in
  let r0 = Psp_partition.Kdtree.nodes_of_region part 0 in
  if Array.length r0 >= 2 then begin
    let s = r0.(0) and t = r0.(Array.length r0 - 1) in
    let server = Server.create ~cost ~key (DB.files db) in
    let r = Client.query_nodes server g s t in
    let truth = Psp_graph.Dijkstra.distance g s t in
    match r.Client.path with
    | Some (_, got) -> Alcotest.(check bool) "same-region cost" true (close_cost got truth)
    | None -> Alcotest.fail "no path within region pair"
  end

let test_oblivious_mode_end_to_end () =
  (* the full protocol through the real square-root ORAM, every scheme *)
  let small = network ~nodes:120 ~seed:4 () in
  let qs = Psp_netgen.Synthetic.random_queries small ~count:6 ~seed:9 in
  let lm, _ = DB.build_lm ~anchors:3 ~seed:2 ~page_size:256 small in
  List.iter
    (fun (name, db) ->
      let server = Server.create ~mode:`Oblivious ~cost ~key (DB.files db) in
      Array.iter
        (fun (s, t) ->
          let r = Client.query_nodes server small s t in
          let truth = Psp_graph.Dijkstra.distance small s t in
          match r.Client.path with
          | None -> Alcotest.fail (name ^ ": no path in oblivious mode")
          | Some (_, got) ->
              Alcotest.(check bool) (name ^ " oblivious correct") true (close_cost got truth))
        qs)
    [ ("CI", DB.build_ci ~page_size:256 small);
      ("PI", DB.build_pi ~page_size:256 small);
      ("HY", DB.build_hy ~threshold:4 ~page_size:256 small);
      ("LM", Calibrate.lm lm ~queries:qs) ]

let test_modes_identical_traces () =
  (* the adversary's view is the same whether pages are served directly
     or through either ORAM - the cost/trace layer is mode-independent *)
  let small = network ~nodes:100 ~seed:6 () in
  let db = DB.build_ci ~page_size:256 small in
  let qs = Psp_netgen.Synthetic.random_queries small ~count:3 ~seed:2 in
  let trace_of mode =
    let server = Server.create ~mode ~cost ~key (DB.files db) in
    Array.to_list
      (Array.map
         (fun (s, t) ->
           Psp_pir.Trace.fingerprint
             (Client.query_nodes server small s t).Client.stats.Session.trace)
         qs)
  in
  let sim = trace_of `Simulated in
  Alcotest.(check (list string)) "sqrt oram same view" sim (trace_of `Oblivious);
  Alcotest.(check (list string)) "pyramid same view" sim (trace_of `Pyramid)

let test_plan_fetches_match_stats () =
  (* for every scheme, the session's actual private fetch counts equal
     the published plan exactly *)
  List.iter
    (fun (name, db) ->
      let server = Server.create ~cost ~key (DB.files db) in
      let s, t = queries.(3) in
      let r = Client.query_nodes server g s t in
      let total =
        List.fold_left (fun a (_, n) -> a + n) 0 r.Client.stats.Session.pir_fetches
      in
      Alcotest.(check int)
        (name ^ " fetches = plan")
        (QP.total_pir_fetches db.DB.header.Psp_index.Header.plan)
        total)
    (Lazy.force databases)

let test_response_time_components () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = Server.create ~cost ~key (DB.files db) in
  let s, t = queries.(1) in
  let r = Client.query_nodes server g s t in
  let rt = Response_time.of_result r in
  Alcotest.(check bool) "pir time dominates" true
    (rt.Response_time.pir_seconds > rt.Response_time.client_seconds);
  Alcotest.(check bool) "comm includes rtts" true
    (rt.Response_time.comm_seconds >= 4.0 *. cost.Psp_pir.Cost_model.rtt -. 1e-9);
  let plan_fetches = QP.total_pir_fetches db.DB.header.Psp_index.Header.plan in
  let total_fetches =
    List.fold_left (fun a (_, n) -> a + n) 0 r.Client.stats.Session.pir_fetches
  in
  Alcotest.(check int) "fetches match plan" plan_fetches total_fetches

let test_response_time_algebra () =
  let a =
    { Response_time.pir_seconds = 1.0;
      comm_seconds = 2.0;
      server_cpu_seconds = 0.5;
      client_seconds = 0.25;
      decode_seconds = 0.0;
      queue_seconds = 0.5 }
  in
  Alcotest.(check (float 1e-9)) "total" 4.25 (Response_time.total a);
  Alcotest.(check (float 1e-9)) "with_queue replaces"
    1.25
    (Response_time.with_queue ~seconds:1.25 a).Response_time.queue_seconds;
  let m = Response_time.mean [ a; Response_time.zero ] in
  Alcotest.(check (float 1e-9)) "mean" 0.5 m.Response_time.pir_seconds;
  Alcotest.(check (float 1e-9)) "mean total" 2.125 (Response_time.total m)

let test_obf_returns_real_path () =
  let obf = Obf.create ~cost ~seed:7 g in
  Array.iter
    (fun (s, t) ->
      let rt, path = Obf.query obf ~set_size:4 ~s ~t_node:t in
      (match path with
      | None -> Alcotest.fail "OBF lost the real path"
      | Some p ->
          Alcotest.(check bool) "optimal" true
            (close_cost (Psp_graph.Path.cost p) (Psp_graph.Dijkstra.distance g s t)));
      Alcotest.(check bool) "no pir" true (rt.Response_time.pir_seconds = 0.0);
      Alcotest.(check bool) "has comm" true (rt.Response_time.comm_seconds > 0.0))
    (Array.sub queries 0 10)

let test_obf_near_placement () =
  (* Lee et al.'s original near-placement: decoys cluster around the
     real endpoints, so the returned paths are shorter and cheaper to
     ship than with uniform decoys *)
  let obf = Obf.create ~cost ~seed:21 g in
  let s, t = queries.(4) in
  let near, p1 = Obf.query ~placement:(Obf.Near 120.0) obf ~set_size:8 ~s ~t_node:t in
  let uniform, p2 = Obf.query ~placement:Obf.Uniform obf ~set_size:8 ~s ~t_node:t in
  Alcotest.(check bool) "near returns real path" true (p1 <> None);
  Alcotest.(check bool) "uniform returns real path" true (p2 <> None);
  Alcotest.(check bool) "near placement communicates less" true
    (near.Response_time.comm_seconds <= uniform.Response_time.comm_seconds)

let test_obf_cost_grows_with_set_size () =
  let obf = Obf.create ~cost ~seed:8 g in
  let s, t = queries.(2) in
  let t4, _ = Obf.query obf ~set_size:4 ~s ~t_node:t in
  let t16, _ = Obf.query obf ~set_size:16 ~s ~t_node:t in
  Alcotest.(check bool) "16 costs more than 4" true
    (Response_time.total t16 > Response_time.total t4)

let test_calibration_tightens_lm_plan () =
  let lm, _ = DB.build_lm ~anchors:4 ~seed:2 ~page_size g in
  let before =
    match lm.DB.header.Psp_index.Header.plan with
    | QP.Lm { total_data_pages } -> total_data_pages
    | _ -> assert false
  in
  let calibrated = Calibrate.lm lm ~queries in
  let after =
    match calibrated.DB.header.Psp_index.Header.plan with
    | QP.Lm { total_data_pages } -> total_data_pages
    | _ -> assert false
  in
  Alcotest.(check bool) (Printf.sprintf "tightened %d -> %d" before after) true
    (after <= before);
  Alcotest.(check bool) "at least two pages" true (after >= 2)

let test_baselines_fetch_more_than_ci () =
  (* §7.3: the PIR baselines read a large share of the database *)
  let dbs = Lazy.force databases in
  let pages scheme =
    let db = List.assoc scheme dbs in
    QP.total_pir_fetches db.DB.header.Psp_index.Header.plan
  in
  Alcotest.(check bool)
    (Printf.sprintf "LM %d > CI %d" (pages "LM") (pages "CI"))
    true
    (pages "LM" > pages "CI");
  Alcotest.(check bool)
    (Printf.sprintf "CI %d > PI %d" (pages "CI") (pages "PI"))
    true
    (pages "CI" > pages "PI")

let test_approximate_schemes () =
  (* future-work extension: epsilon-quantized weights give smaller
     databases and answers within (1 + epsilon) of optimal *)
  let epsilon = 0.05 in
  List.iter
    (fun (name, exact, approx) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s approx %d <= exact %d bytes" name (DB.total_bytes approx)
           (DB.total_bytes exact))
        true
        (DB.total_bytes approx <= DB.total_bytes exact);
      let server = Server.create ~cost ~key (DB.files approx) in
      Array.iter
        (fun (s, t) ->
          let truth = Psp_graph.Dijkstra.distance g s t in
          match (Client.query_nodes server g s t).Client.path with
          | None -> Alcotest.fail (name ^ ": no path")
          | Some (_, got) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %f within (1+eps) of %f" name got truth)
                true
                (got >= truth -. 1e-6 && got <= ((1.0 +. epsilon) *. truth) +. 1e-6))
        (Array.sub queries 0 25))
    [ ( "CI",
        DB.build_ci ~page_size g,
        DB.build_ci ~epsilon ~page_size g );
      ( "PI",
        DB.build_pi ~page_size g,
        DB.build_pi ~epsilon ~page_size g ) ]

let test_quantize_grid () =
  let epsilon = 0.01 in
  List.iter
    (fun w ->
      let q = Psp_index.Encoding.quantize_up ~epsilon w in
      Alcotest.(check bool) "rounds up" true (q >= w);
      Alcotest.(check bool) "bounded" true (q <= w *. (1.0 +. epsilon) *. (1.0 +. 1e-9)))
    [ 0.001; 0.5; 1.0; 3.14159; 250.7; 99999.0 ];
  Alcotest.(check (float 0.0)) "identity at eps 0" 7.5
    (Psp_index.Encoding.quantize_up ~epsilon:0.0 7.5)

let test_bundle_roundtrip () =
  (* save a built database, reload it, and serve queries from the copy *)
  let db = List.assoc "CI" (Lazy.force databases) in
  let dir = Filename.temp_file "psp" "" in
  Sys.remove dir;
  let bundle = Psp_index.Bundle.of_database db in
  Psp_index.Bundle.save bundle ~dir;
  let loaded = Psp_index.Bundle.load ~dir in
  Alcotest.(check string) "scheme" "CI" loaded.Psp_index.Bundle.scheme;
  Alcotest.(check int) "files" (List.length (DB.files db))
    (List.length (Psp_index.Bundle.files loaded));
  let server = Server.create ~cost ~key (Psp_index.Bundle.files loaded) in
  Array.iter
    (fun (s, t) ->
      let truth = Psp_graph.Dijkstra.distance g s t in
      match (Client.query_nodes server g s t).Client.path with
      | Some (_, got) ->
          Alcotest.(check bool) "served from bundle" true (close_cost got truth)
      | None -> Alcotest.fail "no path from loaded bundle")
    (Array.sub queries 0 10);
  (* clean up *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_error_paths () =
  (* unknown scheme in the header *)
  let db = List.assoc "CI" (Lazy.force databases) in
  let bad_header = { db.DB.header with Psp_index.Header.scheme = "??" } in
  let header_file = Psp_index.Header.to_page_file bad_header ~page_size in
  let files =
    header_file :: List.filter (fun f -> PF.name f <> "header") (DB.files db)
  in
  let server = Server.create ~cost ~key files in
  (match Client.query_nodes server g 1 2 with
  | { Client.status = Client.Unknown_scheme { scheme = "??" }; path = None; _ } -> ()
  | _ -> Alcotest.fail "expected Unknown_scheme status on unknown scheme");
  (* malformed bundle directory *)
  (match Psp_index.Bundle.load ~dir:"/nonexistent-psp-dir" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_trace_leak_detection () =
  (* sanity check of the checker itself: a deviating trace is caught *)
  let t1 = Psp_pir.Trace.create () in
  Psp_pir.Trace.record t1 (Psp_pir.Trace.Pir_fetch { round = 2; file = "lookup" });
  let t2 = Psp_pir.Trace.create () in
  Psp_pir.Trace.record t2 (Psp_pir.Trace.Pir_fetch { round = 2; file = "data" });
  match Privacy.indistinguishable [ t1; t2 ] with
  | Ok () -> Alcotest.fail "leak not detected"
  | Error _ -> ()

(* The whole pipeline as one property: over random road networks and any
   scheme, every query is exact and every trace is plan-shaped. *)
let e2e_property =
  let gen =
    QCheck2.Gen.(
      let* nodes = int_range 60 220 in
      let* seed = int_range 0 100_000 in
      let* scheme = int_range 0 3 in
      return (nodes, seed, scheme))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12 ~name:"random network x scheme: exact and plan-shaped" gen
       (fun (nodes, seed, scheme) ->
         let g = network ~nodes ~seed () in
         let db =
           match scheme with
           | 0 -> DB.build_ci ~page_size:256 g
           | 1 -> DB.build_pi ~page_size:256 g
           | 2 -> DB.build_hy ~threshold:5 ~page_size:256 g
           | _ -> DB.build_pi_star ~cluster:2 ~page_size:256 g
         in
         let server = Server.create ~cost ~key (DB.files db) in
         let qs = Psp_netgen.Synthetic.random_queries g ~count:6 ~seed:(seed + 1) in
         let header_pages = PF.page_count db.DB.header_file in
         Array.for_all
           (fun (s, t) ->
             let r = Client.query_nodes server g s t in
             let truth = Psp_graph.Dijkstra.distance g s t in
             let exact =
               match r.Client.path with
               | Some (_, got) -> close_cost got truth
               | None -> false
             in
             let shaped =
               Privacy.conforms db.DB.header ~header_pages r.Client.stats.Session.trace
               = Ok ()
             in
             exact && shaped)
           qs))

let scheme_cases =
  List.concat_map
    (fun name ->
      [ Alcotest.test_case (name ^ " correct") `Slow (test_scheme_correct name);
        Alcotest.test_case (name ^ " private") `Slow (test_scheme_private name) ])
    [ "CI"; "PI"; "HY"; "PI*"; "LM"; "AF" ]

let () =
  Alcotest.run "core"
    [ ("schemes", scheme_cases @ [ e2e_property ]);
      ( "rounds",
        [ Alcotest.test_case "CI has 4 rounds" `Quick (test_scheme_rounds "CI" 4);
          Alcotest.test_case "PI has 3 rounds" `Quick (test_scheme_rounds "PI" 3);
          Alcotest.test_case "PI* has 3 rounds" `Quick (test_scheme_rounds "PI*" 3);
          Alcotest.test_case "HY has 4 rounds" `Quick (test_scheme_rounds "HY" 4) ] );
      ( "edge cases",
        [ Alcotest.test_case "s = t" `Quick test_self_query;
          Alcotest.test_case "same region" `Quick test_same_region_query ] );
      ( "oblivious",
        [ Alcotest.test_case "oram end-to-end" `Slow test_oblivious_mode_end_to_end;
          Alcotest.test_case "modes share one view" `Quick test_modes_identical_traces ] );
      ( "response time",
        [ Alcotest.test_case "components" `Quick test_response_time_components;
          Alcotest.test_case "plan = stats, all schemes" `Quick test_plan_fetches_match_stats;
          Alcotest.test_case "algebra" `Quick test_response_time_algebra ] );
      ( "obf",
        [ Alcotest.test_case "returns real path" `Quick test_obf_returns_real_path;
          Alcotest.test_case "near placement" `Quick test_obf_near_placement;
          Alcotest.test_case "cost grows" `Quick test_obf_cost_grows_with_set_size ] );
      ( "calibration",
        [ Alcotest.test_case "tightens LM plan" `Quick test_calibration_tightens_lm_plan;
          Alcotest.test_case "baselines fetch more" `Quick test_baselines_fetch_more_than_ci ] );
      ( "approximation",
        [ Alcotest.test_case "bounded deviation" `Slow test_approximate_schemes;
          Alcotest.test_case "grid properties" `Quick test_quantize_grid ] );
      ( "persistence",
        [ Alcotest.test_case "bundle roundtrip" `Quick test_bundle_roundtrip ] );
      ( "checker",
        [ Alcotest.test_case "detects leaks" `Quick test_trace_leak_detection;
          Alcotest.test_case "error paths" `Quick test_error_paths ] ) ]
