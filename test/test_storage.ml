(* Storage engine: page files and the no-straddle record packer. *)

module PF = Psp_storage.Page_file
module Packer = Psp_storage.Packer

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Page_file *)

let test_page_file_basics () =
  let f = PF.create ~name:"t" ~page_size:64 in
  Alcotest.(check string) "name" "t" (PF.name f);
  Alcotest.(check int) "page size" 64 (PF.page_size f);
  Alcotest.(check int) "empty" 0 (PF.page_count f);
  let p0 = PF.append f (Bytes.of_string "hello") in
  let p1 = PF.append_blank f in
  Alcotest.(check int) "page 0" 0 p0;
  Alcotest.(check int) "page 1" 1 p1;
  Alcotest.(check int) "count" 2 (PF.page_count f);
  Alcotest.(check int) "size" 128 (PF.size_bytes f)

let test_page_file_padding () =
  let f = PF.create ~name:"t" ~page_size:8 in
  ignore (PF.append f (Bytes.of_string "abc"));
  let page = PF.read f 0 in
  Alcotest.(check int) "padded length" 8 (Bytes.length page);
  Alcotest.(check string) "payload preserved" "abc" (Bytes.to_string (PF.payload f 0));
  Alcotest.(check int) "payload length" 3 (PF.payload_length f 0);
  Alcotest.(check char) "padding zero" '\000' (Bytes.get page 7)

let test_page_file_bounds () =
  let f = PF.create ~name:"t" ~page_size:8 in
  Alcotest.check_raises "oversized"
    (Invalid_argument "Page_file.append(t): payload 9 exceeds page size 8") (fun () ->
      ignore (PF.append f (Bytes.make 9 'x')));
  (* the message is redacted to the file's public page range: on the PIR
     hot path the requested index is secret (see psplint's secret-exception
     rule), so it must never appear in the exception *)
  Alcotest.check_raises "read oob"
    (Invalid_argument "Page_file.read(t): page out of range [0,0)") (fun () ->
      ignore (PF.read f 0))

let test_page_file_utilization () =
  let f = PF.create ~name:"t" ~page_size:10 in
  ignore (PF.append f (Bytes.make 10 'x'));
  ignore (PF.append f (Bytes.make 5 'x'));
  Alcotest.(check (float 1e-9)) "utilization" 0.75 (PF.utilization f);
  Alcotest.(check (float 0.0)) "empty file utilization" 0.0
    (PF.utilization (PF.create ~name:"e" ~page_size:10))

let test_page_file_iter () =
  let f = PF.create ~name:"t" ~page_size:4 in
  ignore (PF.append f (Bytes.of_string "a"));
  ignore (PF.append f (Bytes.of_string "b"));
  let seen = ref [] in
  PF.iter_pages f (fun i page -> seen := (i, Bytes.get page 0) :: !seen);
  Alcotest.(check (list (pair int char))) "iterated" [ (1, 'b'); (0, 'a') ] !seen

(* ------------------------------------------------------------------ *)
(* Packer *)

let test_packer_no_straddle () =
  let p = Packer.create ~page_size:10 in
  let a = Packer.add p (Bytes.make 6 'a') in
  let b = Packer.add p (Bytes.make 6 'b') in
  (* b does not fit after a: must start page 1, not straddle *)
  Alcotest.(check int) "a page" 0 a.Packer.first_page;
  Alcotest.(check int) "b page" 1 b.Packer.first_page;
  Alcotest.(check int) "b offset" 0 b.Packer.offset;
  Alcotest.(check int) "b span" 1 b.Packer.page_span

let test_packer_fills_free_space () =
  let p = Packer.create ~page_size:10 in
  ignore (Packer.add p (Bytes.make 4 'a'));
  let b = Packer.add p (Bytes.make 6 'b') in
  Alcotest.(check int) "same page" 0 b.Packer.first_page;
  Alcotest.(check int) "offset after a" 4 b.Packer.offset;
  Alcotest.(check int) "free" 0 (Packer.current_page_free p)

let test_packer_oversized () =
  let p = Packer.create ~page_size:10 in
  ignore (Packer.add p (Bytes.make 3 'a'));
  let big = Packer.add p (Bytes.make 22 'b') in
  Alcotest.(check int) "fresh page" 1 big.Packer.first_page;
  Alcotest.(check int) "span ceil(22/10)" 3 big.Packer.page_span;
  Alcotest.(check int) "offset" 0 big.Packer.offset;
  Alcotest.(check int) "max span" 3 (Packer.max_span p);
  (* next record may share the oversized record's trailing page *)
  let c = Packer.add p (Bytes.make 2 'c') in
  Alcotest.(check int) "after oversized" 3 c.Packer.first_page;
  Alcotest.(check int) "offset past tail" 2 c.Packer.offset

let test_packer_flush_roundtrip () =
  let p = Packer.create ~page_size:10 in
  let records = [ Bytes.make 4 'a'; Bytes.make 7 'b'; Bytes.make 25 'c'; Bytes.make 1 'd' ] in
  let placements = List.map (Packer.add p) records in
  let f = PF.create ~name:"t" ~page_size:10 in
  Packer.flush_to p f;
  Alcotest.(check int) "page count" (Packer.page_count p) (PF.page_count f);
  (* each record's bytes are recoverable from its placement *)
  List.iter2
    (fun record (pl : Packer.placement) ->
      let window =
        Bytes.concat Bytes.empty
          (List.init pl.Packer.page_span (fun k -> PF.read f (pl.Packer.first_page + k)))
      in
      let got = Bytes.sub window pl.Packer.offset (Bytes.length record) in
      Alcotest.(check string) "record recovered" (Bytes.to_string record) (Bytes.to_string got))
    records placements

let packer_invariants =
  qtest "packer placements never straddle and stay in order"
    QCheck2.Gen.(pair (int_range 8 64) (list_size (int_range 1 40) (int_range 1 100)))
    (fun (page_size, sizes) ->
      let p = Packer.create ~page_size in
      let placements = List.map (fun n -> Packer.add p (Bytes.make n 'x')) sizes in
      let ok = ref true in
      let last = ref (-1) in
      List.iter2
        (fun n (pl : Packer.placement) ->
          (* monotone page order *)
          if pl.Packer.first_page < !last then ok := false;
          last := pl.Packer.first_page;
          if n <= page_size then begin
            if pl.Packer.page_span <> 1 then ok := false;
            if pl.Packer.offset + n > page_size then ok := false
          end
          else begin
            if pl.Packer.offset <> 0 then ok := false;
            if pl.Packer.page_span <> (n + page_size - 1) / page_size then ok := false
          end)
        sizes placements;
      !ok)

let test_page_file_save_load () =
  let f = PF.create ~name:"persisted" ~page_size:32 in
  ignore (PF.append f (Bytes.of_string "alpha"));
  ignore (PF.append f (Bytes.make 32 'z'));
  ignore (PF.append_blank f);
  let path = Filename.temp_file "psp" ".pages" in
  PF.save f ~path;
  let g = PF.load_exn ~path in
  Sys.remove path;
  Alcotest.(check string) "name" "persisted" (PF.name g);
  Alcotest.(check int) "page size" 32 (PF.page_size g);
  Alcotest.(check int) "pages" 3 (PF.page_count g);
  Alcotest.(check string) "payload 0" "alpha" (Bytes.to_string (PF.payload g 0));
  Alcotest.(check int) "payload 1 full" 32 (PF.payload_length g 1);
  Alcotest.(check int) "payload 2 blank" 0 (PF.payload_length g 2);
  Alcotest.(check (float 1e-9)) "utilization preserved" (PF.utilization f) (PF.utilization g)

let test_page_file_load_garbage () =
  let path = Filename.temp_file "psp" ".pages" in
  let oc = open_out path in
  output_string oc "not a page file";
  close_out oc;
  (match PF.load ~path with
  | Error (PF.Corrupt { path = p; _ }) -> Alcotest.(check string) "path reported" path p
  | Ok _ -> Alcotest.fail "expected Corrupt error");
  (match PF.load_exn ~path with
  | exception PF.Error (PF.Corrupt _) -> ()
  | _ -> Alcotest.fail "expected Error exception");
  Sys.remove path

(* Fuzz the on-disk format: truncations and bit flips at arbitrary
   offsets must always surface as the typed [Corrupt] error — never as
   an unhelpful crash, and never as a silently wrong file. *)
let load_corruption_fuzz =
  qtest ~count:300 "load detects any truncation or bit flip"
    QCheck2.Gen.(
      let* page_size = int_range 4 48 in
      let* payloads = list_size (int_range 0 12) (int_range 0 page_size) in
      let* seed = int_range 0 10_000 in
      let* flip = bool in
      return (page_size, payloads, seed, flip))
    (fun (page_size, payloads, seed, flip) ->
      let f = PF.create ~name:"fuzz" ~page_size in
      List.iteri (fun i n -> ignore (PF.append f (Bytes.make n (Char.chr (65 + (i mod 26)))))) payloads;
      let path = Filename.temp_file "psp" ".fuzz" in
      PF.save f ~path;
      let ic = open_in_bin path in
      let blob = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let rng = Psp_util.Rng.create seed in
      let len = String.length blob in
      let corrupted =
        if flip then begin
          let b = Bytes.of_string blob in
          let i = Psp_util.Rng.int rng len in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Psp_util.Rng.int rng 8)));
          Bytes.to_string b
        end
        else String.sub blob 0 (Psp_util.Rng.int rng len)
      in
      let oc = open_out_bin path in
      output_string oc corrupted;
      close_out oc;
      let verdict =
        match PF.load ~path with
        | Error (PF.Corrupt _) -> true
        | Ok _ -> false (* a corrupted file must never load cleanly *)
        | exception _ -> false (* nor crash with an untyped exception *)
      in
      Sys.remove path;
      verdict)

let test_page_file_checksums () =
  let f = PF.create ~name:"t" ~page_size:16 in
  ignore (PF.append f (Bytes.of_string "payload"));
  ignore (PF.append_blank f);
  let page = PF.read f 0 in
  Alcotest.(check bool) "good page verifies" true (PF.verify_page f 0 page);
  Bytes.set page 3 'X';
  Alcotest.(check bool) "tampered page rejected" false (PF.verify_page f 0 page);
  Alcotest.(check bool) "short buffer rejected" false (PF.verify_page f 1 (Bytes.make 3 '\000'));
  Alcotest.(check bool) "distinct pages, distinct crcs" true (PF.page_crc f 0 <> PF.page_crc f 1)

let test_page_file_atomic_save () =
  (* a save that faults must leave a previously saved good file intact *)
  let path = Filename.temp_file "psp" ".pages" in
  let f = PF.create ~name:"stable" ~page_size:16 in
  ignore (PF.append f (Bytes.of_string "original"));
  PF.save f ~path;
  let g = PF.create ~name:"doomed" ~page_size:16 in
  ignore (PF.append g (Bytes.of_string "replacement"));
  Psp_fault.Fault.arm "storage.page_file.save.transient" Psp_fault.Fault.Always;
  (match PF.save g ~path with
  | exception Psp_fault.Fault.Injected _ -> ()
  | () -> Alcotest.fail "expected injected save fault");
  Psp_fault.Fault.reset ();
  let h = PF.load_exn ~path in
  Alcotest.(check string) "old file survives" "stable" (PF.name h);
  Alcotest.(check string) "old payload survives" "original" (Bytes.to_string (PF.payload h 0));
  Sys.remove path

let test_page_file_torn_save_detected () =
  let path = Filename.temp_file "psp" ".pages" in
  let f = PF.create ~name:"torn" ~page_size:16 in
  for i = 0 to 5 do
    ignore (PF.append f (Bytes.make (i + 3) 'q'))
  done;
  Psp_fault.Fault.arm "storage.page_file.save.torn" Psp_fault.Fault.Always;
  PF.save f ~path;
  Psp_fault.Fault.reset ();
  (match PF.load ~path with
  | Error (PF.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "torn write loaded cleanly");
  Sys.remove path

let test_packer_sealed () =
  let p = Packer.create ~page_size:8 in
  ignore (Packer.add p (Bytes.make 2 'a'));
  let f = PF.create ~name:"t" ~page_size:8 in
  Packer.flush_to p f;
  Alcotest.check_raises "sealed" (Invalid_argument "Packer.add: already flushed") (fun () ->
      ignore (Packer.add p (Bytes.make 1 'b')))

let () =
  Alcotest.run "storage"
    [ ( "page_file",
        [ Alcotest.test_case "basics" `Quick test_page_file_basics;
          Alcotest.test_case "padding" `Quick test_page_file_padding;
          Alcotest.test_case "bounds" `Quick test_page_file_bounds;
          Alcotest.test_case "utilization" `Quick test_page_file_utilization;
          Alcotest.test_case "iteration" `Quick test_page_file_iter;
          Alcotest.test_case "save/load" `Quick test_page_file_save_load;
          Alcotest.test_case "load garbage" `Quick test_page_file_load_garbage;
          Alcotest.test_case "checksums" `Quick test_page_file_checksums;
          Alcotest.test_case "atomic save" `Quick test_page_file_atomic_save;
          Alcotest.test_case "torn save detected" `Quick test_page_file_torn_save_detected;
          load_corruption_fuzz ] );
      ( "packer",
        [ Alcotest.test_case "no straddle" `Quick test_packer_no_straddle;
          Alcotest.test_case "fills free space" `Quick test_packer_fills_free_space;
          Alcotest.test_case "oversized records" `Quick test_packer_oversized;
          Alcotest.test_case "flush roundtrip" `Quick test_packer_flush_roundtrip;
          packer_invariants;
          Alcotest.test_case "sealed" `Quick test_packer_sealed ] ) ]
