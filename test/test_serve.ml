(* The multi-tenant serving frontend: a mixed CI+PI stream scheduled
   into per-plan batches must leave every member's adversary trace
   byte-identical to a single-plan sequential run (the mix, the widths
   and the queueing must change *when* things happen, never *what* the
   LBS sees per query), and the adaptive width policy must beat every
   fixed width on tail latency for a bursty workload. *)

module DB = Psp_index.Database
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module F = Psp_fault.Fault
module Workload = Psp_netgen.Workload
module Scheduler = Psp_serve.Scheduler
module Queue = Psp_serve.Queue
open Psp_core

let key = Psp_crypto.Sha256.digest_string "serve tests"
let cost = Psp_pir.Cost_model.ibm4764
let page_size = 256

let g =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes = 120;
      edges = 135;
      width = 1000.0;
      height = 1000.0;
      seed = 5 }

let queries = Psp_netgen.Synthetic.random_queries g ~count:32 ~seed:9

let databases =
  lazy [ ("ci", DB.build_ci ~page_size g); ("pi", DB.build_pi ~page_size g) ]

let server_of db = Server.create ~cost ~key (DB.files db)

let tenants () =
  List.map
    (fun (name, db) -> { Scheduler.name; server = server_of db; graph = g })
    (Lazy.force databases)

let close_cost got truth = Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth

(* Two interleaved tenant streams over one shared arrival schedule.
   [off] shifts which query pairs are used without touching the public
   schedule (tenants, arrivals). *)
let mixed_jobs ?(count = 6) ?(off = 0) ~seed () =
  let pairs n o = Array.init n (fun i -> queries.((o + i) mod Array.length queries)) in
  let arrivals =
    Workload.arrivals (Workload.Bursts { period = 400.0; mean_size = 3 }) ~count ~seed
  in
  Scheduler.mix
    [ ("ci", pairs count off, arrivals); ("pi", pairs count (off + 8), arrivals) ]

let default_cfg =
  { Scheduler.min_width = 1; max_width = 8; slo = 400.0; policy = Scheduler.Adaptive }

(* ------------------------------------------------------------------ *)
(* Queue mechanics *)

let job tenant arrival index =
  { Queue.tenant; src = 0; dst = 1; arrival; index }

let test_queue_fifo () =
  let q = Queue.create () in
  List.iter (Queue.push q)
    [ job "ci" 0.0 0; job "pi" 0.5 1; job "ci" 1.0 2; job "ci" 1.0 3 ];
  Alcotest.(check (list string)) "first-push tenant order" [ "ci"; "pi" ]
    (Queue.tenants q);
  Alcotest.(check int) "ci depth" 3 (Queue.depth q "ci");
  Alcotest.(check (option (float 1e-9))) "ci head" (Some 0.0)
    (Queue.head_arrival q "ci");
  let taken = Queue.take q "ci" ~max:2 in
  Alcotest.(check (list int)) "oldest first"
    [ 0; 2 ]
    (Array.to_list (Array.map (fun (j : Queue.job) -> j.Queue.index) taken));
  Alcotest.(check int) "remaining" 2 (Queue.total_depth q);
  Alcotest.(check int) "pushed counts survive take" 3 (Queue.pushed q "ci");
  (match Queue.push q (job "ci" 0.5 4) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected rejection of a time-travelling arrival")

(* ------------------------------------------------------------------ *)
(* Mixed-queue indistinguishability: every member's trace equals the
   single-plan sequential trace, whatever the mix. *)

let trace_of (r : Client.result) =
  Psp_pir.Trace.fingerprint r.Client.stats.Session.trace

let test_mixed_equals_sequential () =
  let jobs = mixed_jobs ~seed:3 () in
  let report = Scheduler.run default_cfg ~tenants:(tenants ()) ~jobs in
  Alcotest.(check int) "every job served" (Array.length jobs)
    (Array.length report.Scheduler.served);
  Array.iter
    (fun (s : Scheduler.served) ->
      let j = s.Scheduler.job in
      let db = List.assoc j.Queue.tenant (Lazy.force databases) in
      let seq = Client.query_nodes (server_of db) g j.Queue.src j.Queue.dst in
      Alcotest.(check string)
        (Printf.sprintf "%s[%d]: scheduled trace = sequential trace" j.Queue.tenant
           j.Queue.index)
        (trace_of seq) (trace_of s.Scheduler.result);
      match (seq.Client.path, s.Scheduler.result.Client.path) with
      | Some (p1, c1), Some (p2, c2) ->
          Alcotest.(check (list int)) "same path" p1 p2;
          Alcotest.(check bool) "same cost" true (close_cost c1 c2)
      | None, None -> ()
      | _ -> Alcotest.fail "scheduled and sequential answers disagree")
    report.Scheduler.served

let test_mixed_correct () =
  let jobs = mixed_jobs ~count:5 ~seed:11 () in
  let report = Scheduler.run default_cfg ~tenants:(tenants ()) ~jobs in
  Array.iter
    (fun (s : Scheduler.served) ->
      let j = s.Scheduler.job in
      let truth = Psp_graph.Dijkstra.distance g j.Queue.src j.Queue.dst in
      match s.Scheduler.result.Client.path with
      | Some (_, got) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d->%d exact" j.Queue.tenant j.Queue.src j.Queue.dst)
            true (close_cost got truth)
      | None -> Alcotest.fail "no path from the scheduler")
    report.Scheduler.served

(* 32-seed fault sweep: per seed, a recoverable schedule is armed and
   the same mixed two-tenant stream is served twice under the replayed
   schedule with {e different} secret endpoints.  Everything the LBS
   sees must be a function of the public schedule and the fault
   outcomes alone: per-member traces identical across the two runs,
   identical batch sequences, and every batch's members mutually
   indistinguishable. *)
let test_mixed_fault_sweep () =
  for seed = 0 to 31 do
    let rng = Psp_util.Rng.create (0x5e7fe + seed) in
    let pick n = 1 + Psp_util.Rng.int rng n in
    let arms =
      List.filteri
        (fun i _ -> i = seed mod 2 || Psp_util.Rng.int rng 2 = 0)
        [ ("pir.fetch.transient", F.Hits [ pick 6; 6 + pick 6 ]);
          ("pir.fetch.corrupt", F.Hits [ pick 10 ]) ]
    in
    List.iter (fun (p, s) -> F.arm p s) arms;
    Fun.protect ~finally:F.reset (fun () ->
        let run off =
          F.rewind ();
          let jobs = mixed_jobs ~count:3 ~off ~seed () in
          let report = Scheduler.run default_cfg ~tenants:(tenants ()) ~jobs in
          (* members of one batch stay mutually indistinguishable *)
          let by_batch = Hashtbl.create 8 in
          Array.iter
            (fun (s : Scheduler.served) ->
              let k = (s.Scheduler.job.Queue.tenant, s.Scheduler.dispatched) in
              Hashtbl.replace by_batch k
                (s.Scheduler.result.Client.stats.Session.trace
                :: Option.value ~default:[] (Hashtbl.find_opt by_batch k)))
            report.Scheduler.served;
          Hashtbl.iter
            (fun (tenant, _) traces ->
              match Privacy.indistinguishable traces with
              | Ok () -> ()
              | Error e ->
                  Alcotest.fail
                    (Printf.sprintf "seed %d: %s batch members leak: %s" seed tenant e))
            by_batch;
          ( Array.to_list
              (Array.map (fun (s : Scheduler.served) -> trace_of s.Scheduler.result)
                 report.Scheduler.served),
            List.map
              (fun (b : Scheduler.batch_record) ->
                Printf.sprintf "%s w=%d t=%.6f" b.Scheduler.b_tenant
                  b.Scheduler.b_width b.Scheduler.b_dispatched)
              report.Scheduler.batches )
        in
        let traces_a, sched_a = run 0 and traces_b, sched_b = run 5 in
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: traces depend only on the public schedule" seed)
          traces_a traces_b;
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: batch sequence is endpoint-independent" seed)
          sched_a sched_b)
  done

(* ------------------------------------------------------------------ *)
(* Width policy *)

let test_width_bounds () =
  let cfg = { default_cfg with Scheduler.min_width = 2; max_width = 4 } in
  let jobs = mixed_jobs ~count:8 ~seed:21 () in
  let report = Scheduler.run cfg ~tenants:(tenants ()) ~jobs in
  Alcotest.(check bool) "at least one batch" true (report.Scheduler.batches <> []);
  List.iter
    (fun (b : Scheduler.batch_record) ->
      Alcotest.(check bool)
        (Printf.sprintf "batch width %d within [1, max]" b.Scheduler.b_width)
        true
        (b.Scheduler.b_width >= 1 && b.Scheduler.b_width <= 4))
    report.Scheduler.batches

let test_fixed_width_cap () =
  let cfg = { default_cfg with Scheduler.policy = Scheduler.Fixed 2 } in
  let jobs = mixed_jobs ~count:6 ~seed:13 () in
  let report = Scheduler.run cfg ~tenants:(tenants ()) ~jobs in
  List.iter
    (fun (b : Scheduler.batch_record) ->
      Alcotest.(check bool) "fixed policy never exceeds its width" true
        (b.Scheduler.b_width <= 2))
    report.Scheduler.batches

(* The schedule is a function of public inputs only: same arrival
   schedule and tenant mix, different secret endpoints => identical
   (tenant, width, dispatch-instant) sequence and identical Obs shape. *)
let test_schedule_public () =
  let run_with off =
    Psp_obs.Obs.reset ();
    let count = 5 in
    let pairs n o =
      Array.init n (fun i -> queries.((o + i) mod Array.length queries))
    in
    let arrivals =
      Workload.arrivals (Workload.Bursts { period = 400.0; mean_size = 3 }) ~count
        ~seed:17
    in
    let jobs =
      Scheduler.mix
        [ ("ci", pairs count off, arrivals); ("pi", pairs count (off + 3), arrivals) ]
    in
    let report = Scheduler.run default_cfg ~tenants:(tenants ()) ~jobs in
    let schedule =
      List.map
        (fun (b : Scheduler.batch_record) ->
          Printf.sprintf "%s w=%d t=%.6f" b.Scheduler.b_tenant b.Scheduler.b_width
            b.Scheduler.b_dispatched)
        report.Scheduler.batches
    in
    (schedule, Psp_obs.Obs.shape ())
  in
  let s1, shape1 = run_with 0 in
  let s2, shape2 = run_with 7 in
  Alcotest.(check (list string)) "same public schedule for different endpoints" s1 s2;
  Alcotest.(check string) "same telemetry shape for different endpoints" shape1 shape2

(* ------------------------------------------------------------------ *)
(* Latency accounting and the adaptive-beats-fixed acceptance bar *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let p95_of_policy policy =
  let cfg = { Scheduler.min_width = 1; max_width = 16; slo = 500.0; policy } in
  (* one bursty tenant: bursts of mean 6 every 2000 s *)
  let count = 24 in
  let pairs = Array.init count (fun i -> queries.(i mod Array.length queries)) in
  let arrivals =
    Workload.arrivals (Workload.Bursts { period = 2000.0; mean_size = 6 }) ~count
      ~seed:29
  in
  let jobs = Scheduler.mix [ ("ci", pairs, arrivals) ] in
  let db = List.assoc "ci" (Lazy.force databases) in
  let report =
    Scheduler.run cfg
      ~tenants:[ { Scheduler.name = "ci"; server = server_of db; graph = g } ]
      ~jobs
  in
  let lat =
    Array.map (fun (s : Scheduler.served) -> s.Scheduler.latency)
      report.Scheduler.served
  in
  Array.sort compare lat;
  percentile lat 0.95

let test_adaptive_beats_fixed_p95 () =
  let adaptive = p95_of_policy Scheduler.Adaptive in
  List.iter
    (fun w ->
      let fixed = p95_of_policy (Scheduler.Fixed w) in
      Alcotest.(check bool)
        (Printf.sprintf "adaptive p95 (%.1fs) < fixed-%d p95 (%.1fs)" adaptive w fixed)
        true (adaptive < fixed))
    [ 1; 4; 16 ]

let test_latency_decomposition () =
  let jobs = mixed_jobs ~count:5 ~seed:41 () in
  let report = Scheduler.run default_cfg ~tenants:(tenants ()) ~jobs in
  Array.iter
    (fun (s : Scheduler.served) ->
      Alcotest.(check bool) "queue component is the dispatch wait" true
        (Float.abs
           (s.Scheduler.response.Response_time.queue_seconds
           -. (s.Scheduler.dispatched -. s.Scheduler.job.Queue.arrival))
        < 1e-9);
      Alcotest.(check bool) "latency = completion - arrival >= wait" true
        (s.Scheduler.latency
         >= s.Scheduler.response.Response_time.queue_seconds -. 1e-9);
      Alcotest.(check bool) "completion consistent" true
        (Float.abs
           (s.Scheduler.completed -. s.Scheduler.job.Queue.arrival
          -. s.Scheduler.latency)
        < 1e-9))
    report.Scheduler.served;
  Alcotest.(check bool) "makespan covers every completion" true
    (Array.for_all
       (fun (s : Scheduler.served) ->
         s.Scheduler.completed <= report.Scheduler.makespan +. 1e-9)
       report.Scheduler.served)

(* ------------------------------------------------------------------ *)
(* Dispatch partition/scatter *)

let test_partition_scatter () =
  let items = [| ("a", 0); ("b", 1); ("a", 2); ("c", 3); ("b", 4) |] in
  let groups = Psp_pir.Dispatch.partition fst items in
  Alcotest.(check (list string)) "first-seen tenant order" [ "a"; "b"; "c" ]
    (List.map (fun (g : _ Psp_pir.Dispatch.group) -> g.Psp_pir.Dispatch.tenant) groups);
  let results =
    List.map
      (fun (grp : _ Psp_pir.Dispatch.group) ->
        (grp, Array.map (fun (_, (_, v)) -> v * 10) grp.Psp_pir.Dispatch.members))
      groups
  in
  Alcotest.(check (list int)) "scatter restores submission order"
    [ 0; 10; 20; 30; 40 ]
    (Array.to_list (Psp_pir.Dispatch.scatter ~none:(-1) results))

let test_workload_arrivals () =
  let steady = Workload.arrivals (Workload.Steady { rate = 2.0 }) ~count:4 ~seed:1 in
  Alcotest.(check (list (float 1e-9))) "steady gaps" [ 0.0; 0.5; 1.0; 1.5 ]
    (Array.to_list steady);
  List.iter
    (fun p ->
      let a = Workload.arrivals p ~count:50 ~seed:3 in
      let b = Workload.arrivals p ~count:50 ~seed:3 in
      Alcotest.(check bool) "deterministic in seed" true (a = b);
      Array.iteri
        (fun i v -> if i > 0 then
            Alcotest.(check bool) "nondecreasing" true (v >= a.(i - 1)))
        a)
    [ Workload.Steady { rate = 0.5 };
      Workload.Poisson { rate = 1.5 };
      Workload.Bursts { period = 10.0; mean_size = 4 } ];
  (match Workload.arrival_of_string "bursts:10x8" with
  | Ok (Workload.Bursts { period; mean_size }) ->
      Alcotest.(check (float 1e-9)) "period" 10.0 period;
      Alcotest.(check int) "size" 8 mean_size
  | _ -> Alcotest.fail "bursts spec did not parse");
  (match Workload.arrival_of_string "poisson:nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error")

let () =
  Alcotest.run "serve"
    [ ( "queue",
        [ Alcotest.test_case "per-tenant FIFO" `Quick test_queue_fifo;
          Alcotest.test_case "partition/scatter" `Quick test_partition_scatter;
          Alcotest.test_case "arrival processes" `Quick test_workload_arrivals ] );
      ( "privacy",
        [ Alcotest.test_case "mixed = sequential traces" `Slow
            test_mixed_equals_sequential;
          Alcotest.test_case "32-seed mixed fault sweep" `Slow test_mixed_fault_sweep;
          Alcotest.test_case "schedule is endpoint-independent" `Quick
            test_schedule_public ] );
      ( "serving",
        [ Alcotest.test_case "answers exact" `Slow test_mixed_correct;
          Alcotest.test_case "width bounds" `Quick test_width_bounds;
          Alcotest.test_case "fixed-width cap" `Quick test_fixed_width_cap;
          Alcotest.test_case "latency decomposition" `Quick test_latency_decomposition ] );
      ( "slo",
        [ Alcotest.test_case "adaptive beats fixed 1/4/16 on p95" `Slow
            test_adaptive_beats_fixed_p95 ] ) ]
