(* psplint: unit tests for callee classification and taint plumbing, plus
   end-to-end runs over the compiled fixtures in test/fixtures/.

   The fixture sources carry [(* EXPECT: rule-slug *)] markers on the
   exact line a finding must be reported; the expectations are re-read
   from the source at test time, so fixture edits cannot silently drift
   out of sync with the assertions. *)

module Lint = Psp_lint.Lint
module Taint = Psp_lint.Taint
module Finding = Psp_lint.Finding

(* Paths are relative to the test runner's cwd, [_build/default/test]. *)
let fixture_src name = Filename.concat "fixtures" (name ^ ".ml")

let fixture_cmt name =
  Filename.concat "fixtures/.psp_lint_fixtures.objs/byte"
    ("psp_lint_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")

let lib_cmt lib m =
  Printf.sprintf "../lib/%s/.psp_%s.objs/byte/psp_%s__%s.cmt" lib lib lib m

(* ------------------------------------------------------------------ *)
(* Unit: name normalization and callee tables *)

let test_normalize () =
  let aliases =
    [ ("W", "Psp_util.Byte_io.Writer");
      ("Session", "Psp_pir.Server.Session");
      ("S2", "Session") ]
  in
  Alcotest.(check string)
    "alias expanded" "Psp_util.Byte_io.Writer.varint"
    (Taint.normalize aliases "W.varint");
  Alcotest.(check string)
    "chained alias" "Psp_pir.Server.Session.fetch"
    (Taint.normalize aliases "S2.fetch");
  Alcotest.(check string)
    "stdlib stripped" "Sys.time"
    (Taint.normalize [] "Stdlib.Sys.time");
  Alcotest.(check string) "bare name untouched" "foo" (Taint.normalize aliases "foo");
  Alcotest.(check string)
    "unknown module untouched" "Other.f" (Taint.normalize aliases "Other.f")

let test_denylist () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " denied") true (Taint.denylisted name))
    [ "Printf.printf"; "Sys.time"; "Unix.gettimeofday"; "Random.int";
      "print_string"; "exit"; "Out_channel.open_text" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " allowed") false (Taint.denylisted name))
    [ "Printf.sprintf"; "Format.asprintf"; "List.iter"; "Hashtbl.replace";
      "Psp_pir.Server.Session.fetch"; "exitf" ]

let test_length_sensitive () =
  Alcotest.(check (option int)) "Bytes.create" (Some 0)
    (Taint.length_sensitive "Bytes.create");
  Alcotest.(check (option int)) "qualified varint" (Some 1)
    (Taint.length_sensitive "Psp_util.Byte_io.Writer.varint");
  Alcotest.(check (option int)) "suffix needs module boundary" None
    (Taint.length_sensitive "MyBytes.create");
  Alcotest.(check (option int)) "plain call" None (Taint.length_sensitive "List.map")

let test_telemetry () =
  Alcotest.(check (option (list int)))
    "Obs.add records arg 1" (Some [ 1 ]) (Taint.telemetry "Obs.add");
  Alcotest.(check (option (list int)))
    "qualified Obs.observe" (Some [ 1 ])
    (Taint.telemetry "Psp_obs.Obs.observe");
  Alcotest.(check (option (list int)))
    "Obs.incr has no payload but is still a sink" (Some [])
    (Taint.telemetry "Psp_obs.Obs.incr");
  Alcotest.(check (option (list int)))
    "span names are payloads" (Some [ 0 ]) (Taint.telemetry "Obs.with_span");
  Alcotest.(check (option (list int)))
    "suffix needs module boundary" None (Taint.telemetry "MyObs.add");
  Alcotest.(check (option (list int)))
    "unrelated call" None (Taint.telemetry "Hashtbl.add")

let test_mutator () =
  Alcotest.(check (option int)) "Hashtbl.replace" (Some 0)
    (Taint.mutator "Hashtbl.replace");
  Alcotest.(check (option int)) "Queue.add mutates arg 1" (Some 1)
    (Taint.mutator "Queue.add");
  Alcotest.(check (option int)) "qualified Dyn_array.push" (Some 0)
    (Taint.mutator "Psp_util.Dyn_array.push");
  Alcotest.(check (option int)) "reader is not a mutator" None
    (Taint.mutator "Hashtbl.find_opt")

(* ------------------------------------------------------------------ *)
(* End-to-end: fixtures with EXPECT markers *)

let read_lines path =
  let ic = open_in path in
  let rec go acc n =
    match input_line ic with
    | line -> go ((n, line) :: acc) (n + 1)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go [] 1

(* Every [(* EXPECT: slug *)] occurrence, as a (line, slug) list. *)
let expectations path =
  let marker = "(* EXPECT: " in
  let mlen = String.length marker in
  let find_marker line pos =
    let n = String.length line in
    let rec go i =
      if i + mlen > n then None
      else if String.sub line i mlen = marker then Some i
      else go (i + 1)
    in
    go pos
  in
  List.concat_map
    (fun (n, line) ->
      let rec scan pos acc =
        match find_marker line pos with
        | None -> List.rev acc
        | Some i -> (
            let start = i + mlen in
            match String.index_from_opt line start ' ' with
            | None -> List.rev acc
            | Some stop -> scan stop ((n, String.sub line start (stop - start)) :: acc))
      in
      scan 0 [])
    (read_lines path)

let found_pairs (r : Lint.report) =
  List.map (fun (f : Finding.t) -> (f.line, Finding.rule_slug f.rule)) r.findings

let finding_pair = Alcotest.(pair int string)
let sorted = List.sort compare

let check_fixture name () =
  let r = Lint.analyze_cmt (fixture_cmt name) in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check (list finding_pair))
    (name ^ " findings match EXPECT markers")
    (sorted (expectations (fixture_src name)))
    (sorted (found_pairs r))

let test_good_audit () =
  let r = Lint.analyze_cmt (fixture_cmt "fx_good") in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check int) "five audited functions" 5 (List.length r.audits);
  Alcotest.(check bool) "one justified site" true
    (List.exists (fun (a : Finding.audit) -> a.justified = 1) r.audits);
  (* debug_print is not [@@oblivious], so its printf must not appear *)
  Alcotest.(check (list finding_pair)) "clean" [] (found_pairs r)

let test_exit_codes () =
  Alcotest.(check int) "clean -> 0" 0
    (Lint.exit_code (Lint.analyze_cmt (fixture_cmt "fx_good")));
  Alcotest.(check int) "findings -> 1" 1
    (Lint.exit_code (Lint.analyze_cmt (fixture_cmt "fx_bad_branch")));
  Alcotest.(check int) "unreadable -> 2" 2
    (Lint.exit_code (Lint.analyze_cmt "fixtures/no_such_file.cmt"))

(* ------------------------------------------------------------------ *)
(* End-to-end: the real oblivious core must stay clean *)

let core_cmts =
  [ lib_cmt "core" "Client";
    lib_cmt "storage" "Page_file";
    lib_cmt "pir" "Server";
    lib_cmt "pir" "Oblivious_store";
    lib_cmt "pir" "Pyramid_store";
    lib_cmt "pir" "Trace";
    lib_cmt "index" "Query_plan";
    lib_cmt "index" "Encoding" ]

let test_oblivious_core_clean () =
  let r = Lint.run core_cmts in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check (list finding_pair)) "zero findings on the oblivious core" []
    (found_pairs r);
  Alcotest.(check bool) "audit is non-trivial" true (List.length r.audits >= 25)

(* The audit must actually see the secrets: a silent annotation typo
   (e.g. [@secert]) would otherwise pass as vacuously clean. *)
let test_core_secrets_seeded () =
  let r = Lint.run core_cmts in
  let audit_of name =
    match List.find_opt (fun (a : Finding.audit) -> a.a_func = name) r.audits with
    | Some a -> a
    | None -> Alcotest.failf "no audit record for %s" name
  in
  Alcotest.(check (list string))
    "client query secrets" [ "sx"; "sy"; "tx"; "ty" ] (audit_of "query").secrets;
  Alcotest.(check (list string))
    "session fetch secrets" [ "page" ] (audit_of "Session.fetch").secrets;
  Alcotest.(check bool) "session fetch justifies sites" true
    ((audit_of "Session.fetch").justified >= 3)

let () =
  Alcotest.run "lint"
    [ ( "tables",
        [ Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "denylist" `Quick test_denylist;
          Alcotest.test_case "length-sensitive" `Quick test_length_sensitive;
          Alcotest.test_case "mutators" `Quick test_mutator;
          Alcotest.test_case "telemetry sinks" `Quick test_telemetry ] );
      ( "fixtures",
        [ Alcotest.test_case "good is clean" `Quick test_good_audit;
          Alcotest.test_case "bad branch" `Quick (check_fixture "fx_bad_branch");
          Alcotest.test_case "bad length" `Quick (check_fixture "fx_bad_length");
          Alcotest.test_case "bad call" `Quick (check_fixture "fx_bad_call");
          Alcotest.test_case "bad telemetry" `Quick (check_fixture "fx_bad_telemetry");
          Alcotest.test_case "regression: fetch message" `Quick
            (check_fixture "fx_regression_audit");
          Alcotest.test_case "exit codes" `Quick test_exit_codes ] );
      ( "oblivious-core",
        [ Alcotest.test_case "zero findings" `Quick test_oblivious_core_clean;
          Alcotest.test_case "secrets seeded" `Quick test_core_secrets_seeded ] ) ]
