(* psplint: unit tests for callee classification and taint plumbing, plus
   end-to-end runs over the compiled fixtures in test/fixtures/.

   The fixture sources carry [(* EXPECT: rule-slug *)] markers on the
   exact line a finding must be reported; the expectations are re-read
   from the source at test time, so fixture edits cannot silently drift
   out of sync with the assertions. *)

module Lint = Psp_lint.Lint
module Taint = Psp_lint.Taint
module Finding = Psp_lint.Finding
module Baseline = Psp_lint.Baseline
module Sarif = Psp_lint.Sarif

(* Paths are relative to the test runner's cwd, [_build/default/test]. *)
let fixture_src name = Filename.concat "fixtures" (name ^ ".ml")

let fixture_cmt name =
  Filename.concat "fixtures/.psp_lint_fixtures.objs/byte"
    ("psp_lint_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")

let lib_cmt lib m =
  Printf.sprintf "../lib/%s/.psp_%s.objs/byte/psp_%s__%s.cmt" lib lib lib m

(* ------------------------------------------------------------------ *)
(* Unit: name normalization and callee tables *)

let test_normalize () =
  let aliases =
    [ ("W", "Psp_util.Byte_io.Writer");
      ("Session", "Psp_pir.Server.Session");
      ("S2", "Session") ]
  in
  Alcotest.(check string)
    "alias expanded" "Psp_util.Byte_io.Writer.varint"
    (Taint.normalize aliases "W.varint");
  Alcotest.(check string)
    "chained alias" "Psp_pir.Server.Session.fetch"
    (Taint.normalize aliases "S2.fetch");
  Alcotest.(check string)
    "stdlib stripped" "Sys.time"
    (Taint.normalize [] "Stdlib.Sys.time");
  Alcotest.(check string) "bare name untouched" "foo" (Taint.normalize aliases "foo");
  Alcotest.(check string)
    "unknown module untouched" "Other.f" (Taint.normalize aliases "Other.f")

let test_denylist () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " denied") true (Taint.denylisted name))
    [ "Printf.printf"; "Sys.time"; "Unix.gettimeofday"; "Random.int";
      "print_string"; "exit"; "Out_channel.open_text" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " allowed") false (Taint.denylisted name))
    [ "Printf.sprintf"; "Format.asprintf"; "List.iter"; "Hashtbl.replace";
      "Psp_pir.Server.Session.fetch"; "exitf" ]

let test_length_sensitive () =
  Alcotest.(check (option int)) "Bytes.create" (Some 0)
    (Taint.length_sensitive "Bytes.create");
  Alcotest.(check (option int)) "qualified varint" (Some 1)
    (Taint.length_sensitive "Psp_util.Byte_io.Writer.varint");
  Alcotest.(check (option int)) "suffix needs module boundary" None
    (Taint.length_sensitive "MyBytes.create");
  Alcotest.(check (option int)) "plain call" None (Taint.length_sensitive "List.map")

let test_telemetry () =
  Alcotest.(check (option (list int)))
    "Obs.add records arg 1" (Some [ 1 ]) (Taint.telemetry "Obs.add");
  Alcotest.(check (option (list int)))
    "qualified Obs.observe" (Some [ 1 ])
    (Taint.telemetry "Psp_obs.Obs.observe");
  Alcotest.(check (option (list int)))
    "Obs.incr has no payload but is still a sink" (Some [])
    (Taint.telemetry "Psp_obs.Obs.incr");
  Alcotest.(check (option (list int)))
    "span names are payloads" (Some [ 0 ]) (Taint.telemetry "Obs.with_span");
  Alcotest.(check (option (list int)))
    "suffix needs module boundary" None (Taint.telemetry "MyObs.add");
  Alcotest.(check (option (list int)))
    "unrelated call" None (Taint.telemetry "Hashtbl.add")

let test_iterator () =
  Alcotest.(check (option int)) "Array.iter walks arg 1" (Some 1)
    (Taint.iterator "Array.iter");
  Alcotest.(check (option int)) "List.fold_left walks arg 2" (Some 2)
    (Taint.iterator "List.fold_left");
  Alcotest.(check (option int)) "qualified Seq.iter" (Some 1)
    (Taint.iterator "Stdlib.Seq.iter");
  Alcotest.(check (option int)) "String.iter deliberately absent" None
    (Taint.iterator "String.iter");
  Alcotest.(check (option int)) "suffix needs module boundary" None
    (Taint.iterator "MyList.iter")

let test_compare_like () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " compare-like") true (Taint.compare_like name))
    [ "="; "<>"; "compare"; "=="; "!="; "Hashtbl.hash" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " not compare-like") false
        (Taint.compare_like name))
    [ "String.equal"; "Int.compare"; "+" ]

let test_mutator () =
  Alcotest.(check (option int)) "Hashtbl.replace" (Some 0)
    (Taint.mutator "Hashtbl.replace");
  Alcotest.(check (option int)) "Queue.add mutates arg 1" (Some 1)
    (Taint.mutator "Queue.add");
  Alcotest.(check (option int)) "qualified Dyn_array.push" (Some 0)
    (Taint.mutator "Psp_util.Dyn_array.push");
  Alcotest.(check (option int)) "reader is not a mutator" None
    (Taint.mutator "Hashtbl.find_opt")

(* ------------------------------------------------------------------ *)
(* End-to-end: fixtures with EXPECT markers *)

let read_lines path =
  let ic = open_in path in
  let rec go acc n =
    match input_line ic with
    | line -> go ((n, line) :: acc) (n + 1)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go [] 1

(* Every [(* EXPECT: slug *)] occurrence, as a (line, slug) list. *)
let expectations path =
  let marker = "(* EXPECT: " in
  let mlen = String.length marker in
  let find_marker line pos =
    let n = String.length line in
    let rec go i =
      if i + mlen > n then None
      else if String.sub line i mlen = marker then Some i
      else go (i + 1)
    in
    go pos
  in
  List.concat_map
    (fun (n, line) ->
      let rec scan pos acc =
        match find_marker line pos with
        | None -> List.rev acc
        | Some i -> (
            let start = i + mlen in
            match String.index_from_opt line start ' ' with
            | None -> List.rev acc
            | Some stop -> scan stop ((n, String.sub line start (stop - start)) :: acc))
      in
      scan 0 [])
    (read_lines path)

let found_pairs (r : Lint.report) =
  List.map (fun (f : Finding.t) -> (f.line, Finding.rule_slug f.rule)) r.findings

let finding_pair = Alcotest.(pair int string)
let sorted = List.sort compare

let check_fixture name () =
  let r = Lint.analyze_cmt (fixture_cmt name) in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check (list finding_pair))
    (name ^ " findings match EXPECT markers")
    (sorted (expectations (fixture_src name)))
    (sorted (found_pairs r))

let test_good_audit () =
  let r = Lint.analyze_cmt (fixture_cmt "fx_good") in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check int) "nine audited functions" 9 (List.length r.audits);
  Alcotest.(check bool) "one justified site" true
    (List.exists (fun (a : Finding.audit) -> a.justified = 1) r.audits);
  (* debug_print is not [@@oblivious], so its printf must not appear *)
  Alcotest.(check (list finding_pair)) "clean" [] (found_pairs r)

let test_exit_codes () =
  Alcotest.(check int) "clean -> 0" 0
    (Lint.exit_code (Lint.analyze_cmt (fixture_cmt "fx_good")));
  Alcotest.(check int) "findings -> 1" 1
    (Lint.exit_code (Lint.analyze_cmt (fixture_cmt "fx_bad_branch")));
  Alcotest.(check int) "unreadable -> 2" 2
    (Lint.exit_code (Lint.analyze_cmt "fixtures/no_such_file.cmt"))

(* ------------------------------------------------------------------ *)
(* Whole-program: cross-module flows, discovery gaps *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let interproc_cmts names = List.map fixture_cmt names

(* The secret flows fx_bad_interproc -> mid -> helper; the finding lands
   at the oblivious call site with the full three-frame chain. *)
let test_interproc_chain () =
  let r =
    Lint.run_program ~root:"."
      (interproc_cmts
         [ "fx_interproc_helper"; "fx_interproc_mid"; "fx_bad_interproc" ])
  in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check (list finding_pair))
    "findings match EXPECT markers"
    (sorted (expectations (fixture_src "fx_bad_interproc")))
    (sorted (found_pairs r));
  match r.findings with
  | [ f ] ->
      Alcotest.(check int) "three-frame chain" 3 (List.length f.Finding.chain);
      Alcotest.(check (list string))
        "chain crosses all three modules"
        [ "fx_bad_interproc.ml"; "fx_interproc_mid.ml"; "fx_interproc_helper.ml" ]
        (List.map
           (fun (fr : Finding.frame) -> Filename.basename fr.fr_file)
           f.Finding.chain)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* fx_good must stay clean in whole-program mode too: [read_at] passes a
   secret as [at]'s optional argument, so [at]'s summary must not carry a
   sink for the compiler-generated default-select ([?(pos = 0)]), and the
   abbreviation exemption must hold with summaries applied. *)
let test_good_whole_program () =
  let r = Lint.run_program ~root:"." (interproc_cmts [ "fx_good" ]) in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check (list finding_pair)) "clean" [] (found_pairs r)

(* Without linking, the same module is vacuously clean: the flow exists
   only in the whole-program view. *)
let test_interproc_per_module_blind () =
  let r = Lint.analyze_cmt (fixture_cmt "fx_bad_interproc") in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check (list finding_pair))
    "per-module mode cannot see the cross-module flow" [] (found_pairs r)

(* Dropping the leaf from the surface turns the unresolved project call
   into a discovery-gap finding instead of silence. *)
let test_unanalyzed_module () =
  let r =
    Lint.run_program ~root:"."
      (interproc_cmts [ "fx_interproc_mid"; "fx_bad_interproc" ])
  in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check bool) "discovery gap flagged" true
    (List.exists
       (fun (f : Finding.t) ->
         Finding.rule_slug f.rule = "unanalyzed-module"
         && contains f.message "Psp_lint_fixtures.Fx_interproc_helper")
       r.findings)

(* ------------------------------------------------------------------ *)
(* Baseline: fingerprint suppression and the drift ratchet *)

let mk_finding ?(chain = []) ~file ~line ~rule ~func message =
  { Finding.file; line; col = 0; rule; func; message; chain }

let mk_audit ~func justified =
  { Finding.a_file = "a.ml"; a_line = 1; a_func = func; secrets = [ "x" ];
    justified; flagged = 0 }

let with_baseline findings audits k =
  let tmp = Filename.temp_file "psplint_baseline" ".json" in
  Baseline.write tmp findings audits;
  let b =
    match Baseline.load tmp with
    | Ok b -> b
    | Error e -> Alcotest.failf "baseline load failed: %s" e
  in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) (fun () -> k tmp b)

let test_baseline_roundtrip () =
  let f = mk_finding ~file:"a.ml" ~line:3 ~rule:Finding.Secret_branch ~func:"M.f" "m" in
  let a = mk_audit ~func:"M.f" 2 in
  with_baseline [ f ] [ a ] (fun tmp b ->
      let applied = Baseline.apply b ~baseline_file:tmp [ f ] [ a ] in
      Alcotest.(check int) "accepted finding suppressed" 1 applied.Baseline.suppressed;
      Alcotest.(check int) "nothing kept" 0 (List.length applied.Baseline.kept);
      Alcotest.(check int) "no drift" 0 (List.length applied.Baseline.drift);
      (* the fingerprint is line-free: a moved finding stays accepted *)
      let applied =
        Baseline.apply b ~baseline_file:tmp [ { f with Finding.line = 41 } ] [ a ]
      in
      Alcotest.(check int) "moved finding still suppressed" 1
        applied.Baseline.suppressed;
      (* a finding the baseline has never seen fails the run *)
      let fresh =
        mk_finding ~file:"b.ml" ~line:1 ~rule:Finding.Secret_loop ~func:"M.g" "new"
      in
      let applied = Baseline.apply b ~baseline_file:tmp [ f; fresh ] [ a ] in
      Alcotest.(check int) "fresh finding kept" 1 (List.length applied.Baseline.kept))

let test_baseline_drift () =
  let f = mk_finding ~file:"a.ml" ~line:3 ~rule:Finding.Secret_branch ~func:"M.f" "m" in
  let a = mk_audit ~func:"M.f" 2 in
  with_baseline [ f ] [ a ] (fun tmp b ->
      (* the accepted finding was fixed: its stale entry must surface *)
      let applied = Baseline.apply b ~baseline_file:tmp [] [ a ] in
      Alcotest.(check int) "stale accepted entry drifts" 1
        (List.length applied.Baseline.drift);
      (* justified-site count changed in either direction *)
      let drift_with n =
        List.length
          (Baseline.apply b ~baseline_file:tmp [ f ] [ mk_audit ~func:"M.f" n ])
            .Baseline.drift
      in
      Alcotest.(check int) "justification added drifts" 1 (drift_with 3);
      Alcotest.(check int) "justification removed drifts" 1 (drift_with 1);
      Alcotest.(check int) "matching count is quiet" 0 (drift_with 2))

(* ------------------------------------------------------------------ *)
(* SARIF: structure of the emitted log *)

let test_sarif () =
  let chain =
    [ { Finding.fr_func = "M.f"; fr_file = "a.ml"; fr_line = 3; fr_col = 2;
        fr_note = "calls M.g" };
      { Finding.fr_func = "M.g"; fr_file = "b.ml"; fr_line = 8; fr_col = 4;
        fr_note = "conditional guard" } ]
  in
  let f =
    mk_finding ~chain ~file:"a.ml" ~line:3 ~rule:Finding.Secret_branch ~func:"M.f"
      "cross-module flow"
  in
  let tmp = Filename.temp_file "psplint" ".sarif" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) (fun () ->
      Sarif.write tmp [ f ];
      let ic = open_in_bin tmp in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("log contains " ^ needle) true (contains s needle))
        [ "\"2.1.0\"";
          "sarif-2.1.0.json";
          "\"secret-branch\"";
          "\"psplint/v1\"";
          "codeFlows";
          "threadFlows";
          "conditional guard";
          "cross-module flow" ];
      (* every rule ships in the catalog, found or not *)
      List.iter
        (fun rule ->
          let id = Printf.sprintf "\"%s\"" (Finding.rule_slug rule) in
          Alcotest.(check bool) ("catalog has " ^ id) true (contains s id))
        Finding.all_rules)

(* ------------------------------------------------------------------ *)
(* End-to-end: the real oblivious core must stay clean *)

let core_cmts =
  [ lib_cmt "core" "Client";
    lib_cmt "storage" "Page_file";
    lib_cmt "pir" "Server";
    lib_cmt "pir" "Oblivious_store";
    lib_cmt "pir" "Pyramid_store";
    lib_cmt "pir" "Trace";
    lib_cmt "index" "Query_plan";
    lib_cmt "index" "Encoding" ]

let test_oblivious_core_clean () =
  let r = Lint.run core_cmts in
  Alcotest.(check (list string)) "no read errors" [] r.errors;
  Alcotest.(check (list finding_pair)) "zero findings on the oblivious core" []
    (found_pairs r);
  Alcotest.(check bool) "audit is non-trivial" true (List.length r.audits >= 25)

(* The audit must actually see the secrets: a silent annotation typo
   (e.g. [@secert]) would otherwise pass as vacuously clean. *)
let test_core_secrets_seeded () =
  let r = Lint.run core_cmts in
  let audit_of name =
    match List.find_opt (fun (a : Finding.audit) -> a.a_func = name) r.audits with
    | Some a -> a
    | None -> Alcotest.failf "no audit record for %s" name
  in
  Alcotest.(check (list string))
    "client query secrets" [ "sx"; "sy"; "tx"; "ty" ] (audit_of "query").secrets;
  Alcotest.(check (list string))
    "session fetch secrets" [ "page" ] (audit_of "Session.fetch").secrets;
  Alcotest.(check bool) "session fetch justifies sites" true
    ((audit_of "Session.fetch").justified >= 3)

let () =
  Alcotest.run "lint"
    [ ( "tables",
        [ Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "denylist" `Quick test_denylist;
          Alcotest.test_case "length-sensitive" `Quick test_length_sensitive;
          Alcotest.test_case "mutators" `Quick test_mutator;
          Alcotest.test_case "iterators" `Quick test_iterator;
          Alcotest.test_case "compare-like" `Quick test_compare_like;
          Alcotest.test_case "telemetry sinks" `Quick test_telemetry ] );
      ( "fixtures",
        [ Alcotest.test_case "good is clean" `Quick test_good_audit;
          Alcotest.test_case "bad branch" `Quick (check_fixture "fx_bad_branch");
          Alcotest.test_case "bad length" `Quick (check_fixture "fx_bad_length");
          Alcotest.test_case "bad call" `Quick (check_fixture "fx_bad_call");
          Alcotest.test_case "bad telemetry" `Quick (check_fixture "fx_bad_telemetry");
          Alcotest.test_case "bad alloc" `Quick (check_fixture "fx_bad_alloc");
          Alcotest.test_case "bad polyeq" `Quick (check_fixture "fx_bad_polyeq");
          Alcotest.test_case "bad loop" `Quick (check_fixture "fx_bad_loop");
          Alcotest.test_case "regression: fetch message" `Quick
            (check_fixture "fx_regression_audit");
          Alcotest.test_case "exit codes" `Quick test_exit_codes ] );
      ( "interproc",
        [ Alcotest.test_case "good is clean whole-program" `Quick
            test_good_whole_program;
          Alcotest.test_case "cross-module chain" `Quick test_interproc_chain;
          Alcotest.test_case "per-module is blind" `Quick
            test_interproc_per_module_blind;
          Alcotest.test_case "unanalyzed module" `Quick test_unanalyzed_module ] );
      ( "baseline",
        [ Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "drift ratchet" `Quick test_baseline_drift ] );
      ( "sarif", [ Alcotest.test_case "log structure" `Quick test_sarif ] );
      ( "oblivious-core",
        [ Alcotest.test_case "zero findings" `Quick test_oblivious_core_clean;
          Alcotest.test_case "secrets seeded" `Quick test_core_secrets_seeded ] ) ]
