(* Secret-dependent control flow: every EXPECT line must be flagged. *)

let branch_on_secret (x [@secret]) =
  if x > 0 then 1 else 0 (* EXPECT: secret-branch *)
  [@@oblivious]

let match_on_secret (x [@secret]) =
  match x with (* EXPECT: secret-branch *)
  | 0 -> "zero"
  | _ -> "other"
  [@@oblivious]

let loop_to_secret (n [@secret]) =
  let total = ref 0 in
  for i = 1 to n do (* EXPECT: secret-branch *)
    total := !total + i
  done;
  !total
  [@@oblivious]

let while_on_secret (n [@secret]) =
  let k = ref n in
  while !k > 0 do (* EXPECT: secret-branch *)
    decr k
  done
  [@@oblivious]

(* Taint must flow through lets and arithmetic before the branch. *)
let branch_on_derived (x [@secret]) =
  let y = (x * 3) + 1 in
  let z = y mod 7 in
  if z = 0 then "divisible" else "not" (* EXPECT: secret-branch *)
  [@@oblivious]

(* Implicit flow: a ref written under a secret branch carries taint. *)
let implicit_flow (x [@secret]) =
  let flag = ref false in
  (if x > 10 then flag := true) [@leak_ok "the branch itself is accounted for"];
  if !flag then 1 else 0 (* EXPECT: secret-branch *)
  [@@oblivious]
