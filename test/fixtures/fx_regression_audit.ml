(* Regression guard for the leak the annotation audit surfaced in
   Server.Session.fetch: the bounds-check message embedded the secret
   page index, so a logged or surfaced exception revealed which page the
   client asked for.  The broken shape is preserved here so psplint can
   never silently stop catching it; the repaired shape below must stay
   clean. *)

let fetch_unredacted name pages (page [@secret]) =
  (if page < 0 || page >= pages then (* EXPECT: secret-branch *)
     invalid_arg (Printf.sprintf "fetch(%s): page %d out of range" name page)); (* EXPECT: secret-exception *)
  page * 2
  [@@oblivious]

(* The repaired shape: message redacted to public data, bounds check
   justified — zero findings expected. *)
let fetch_redacted name pages (page [@secret]) =
  (if page < 0 || page >= pages then
     invalid_arg (Printf.sprintf "fetch(%s): page out of range [0,%d)" name pages))
  [@leak_ok "bounds check fails closed; the message is redacted to public data"];
  page * 2
  [@@oblivious]
