(* Variable-time comparisons on secrets: structural equality, compare
   and Hashtbl.hash walk the value (time depends on contents); physical
   equality publishes sharing.  Immediate types compile to constant-time
   primitives and are exempt. *)

let same_blob (a [@secret]) (b : bytes) =
  a = b (* EXPECT: secret-compare *)
  [@@oblivious]

let order (xs [@secret]) (ys : int list) =
  compare xs ys (* EXPECT: secret-compare *)
  [@@oblivious]

let bucket (key [@secret]) (table : (string, int) Hashtbl.t) =
  ignore table;
  Hashtbl.hash key land 15 (* EXPECT: secret-compare *)
  [@@oblivious]

let interned (s [@secret]) (t : string) =
  s == t (* EXPECT: secret-compare *)
  [@@oblivious]

(* Immediate comparisons are constant-time: no findings. *)
let same_int (a [@secret]) (b : int) = a = b [@@oblivious]
let same_char (c [@secret]) (d : char) = c <> d [@@oblivious]

(* An abbreviation chain ending in a non-immediate is still flagged:
   expansion must not turn every alias into an exemption. *)
type digest = string
type fingerprint = digest

let same_digest (a [@secret] : fingerprint) (b : fingerprint) =
  a = b (* EXPECT: secret-compare *)
  [@@oblivious]
