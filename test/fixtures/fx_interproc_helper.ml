(* Leaf helper for the interprocedural fixtures.  Nothing here is
   [@@oblivious] — per-module analysis has nothing to say about it — but
   whole-program summarization records the parameter-to-sink flows so
   oblivious callers two modules away inherit them. *)

(* Branches on its argument: summary sink (secret-branch on param 0). *)
let clamp v = if v < 0 then 0 else if v > 255 then 255 else v

(* Pure passthrough: returns its argument's taint, no sink of its own. *)
let double v = v * 2
