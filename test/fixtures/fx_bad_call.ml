(* Ambient effects inside oblivious code, and escape hatches without a
   justification.  An unjustified [@leak_ok] does NOT suppress the
   underlying finding: both are reported. *)

let print_progress (x [@secret]) =
  Printf.printf "step\n"; (* EXPECT: effectful-call *)
  x + 1
  [@@oblivious]

let timestamped (x [@secret]) =
  let t = Sys.time () in (* EXPECT: effectful-call *)
  x + int_of_float t
  [@@oblivious]

let random_pad (x [@secret]) =
  x + Random.int 7 (* EXPECT: effectful-call *)
  [@@oblivious]

(* Effects are flagged even when no secret is in sight: oblivious code
   must not touch ambient channels at all. *)
let leaks_nothing_but_still_flagged () =
  print_string "hello" (* EXPECT: effectful-call *)
  [@@oblivious]

let unjustified_hatch (x [@secret]) =
  (if x > 0 then 1 else 0) (* EXPECT: secret-branch *)
  [@leak_ok] (* EXPECT: missing-justification *)
  [@@oblivious]

let empty_reason (x [@secret]) =
  (if x land 1 = 1 then 1 else 0) (* EXPECT: secret-branch *)
  [@leak_ok "   "] (* EXPECT: missing-justification *)
  [@@oblivious]
