(* Secret-dependent lengths and encodings: sizes are server-visible. *)

let alloc_secret_bytes (n [@secret]) =
  Bytes.create n (* EXPECT: secret-length *)
  [@@oblivious]

let alloc_secret_array (n [@secret]) =
  Array.make n 0 (* EXPECT: secret-length *)
  [@@oblivious]

let list_of_secret_length (n [@secret]) =
  List.init n (fun i -> i) (* EXPECT: secret-length *)
  [@@oblivious]

(* A varint's width is a function of its value: encoding a secret with
   one leaks its magnitude through the message length. *)
let varint_of_secret (x [@secret]) =
  let w = Psp_util.Byte_io.Writer.create ~capacity:10 () in
  Psp_util.Byte_io.Writer.varint w x; (* EXPECT: secret-length *)
  Psp_util.Byte_io.Writer.contents w
  [@@oblivious]

(* Taint reaches the length through intermediate arithmetic. *)
let alloc_derived_length (n [@secret]) =
  let padded = ((n + 7) / 8) * 8 in
  Bytes.create padded (* EXPECT: secret-length *)
  [@@oblivious]

(* A secret embedded in an exception message escapes the trace. *)
let raise_with_secret (page [@secret]) =
  if page < 0 then (* EXPECT: secret-branch *)
    failwith (Printf.sprintf "bad page %d" page) (* EXPECT: secret-exception *)
  [@@oblivious]
