(* Secret-dependent allocation: heap words provisioned under secret
   control show up in allocation profiles and GC counters, publishing
   which arm ran.  Allocations outside secret control are fine. *)

let option_of_sign (x [@secret]) =
  if x >= 0 (* EXPECT: secret-branch *) then Some x (* EXPECT: secret-alloc *)
  else None
  [@@oblivious]

let pair_when_odd (x [@secret]) =
  match x land 1 with (* EXPECT: secret-branch *)
  | 1 -> (x, x) (* EXPECT: secret-alloc *)
  | _ -> (0, 0) (* EXPECT: secret-alloc *)
  [@@oblivious]

(* Allocation before any secret branch is public: no finding. *)
let public_alloc (x [@secret]) =
  let box = (1, 2) in
  fst box + (x * 0)
  [@@oblivious]

(* Regression: a format literal inside a secret arm elaborates to
   CamlinternalFormatBasics constructors, which must not register as a
   secret allocation. *)
let label (x [@secret]) =
  if x > 0 (* EXPECT: secret-branch *) then Printf.sprintf "positive"
  else "negative"
  [@@oblivious]
