(* Instrumentation as a side channel: everything recorded through
   lib/obs is visible to the (adversarial) server operator, so secret
   payloads and secret-controlled metric updates are findings. *)

module Obs = Psp_obs.Obs

let pages = Obs.counter "fx.pages"
let latency = Obs.histogram "fx.latency"

(* Recording a secret value publishes it verbatim. *)
let record_page (page [@secret]) =
  Obs.add pages page (* EXPECT: secret-telemetry *)
  [@@oblivious]

(* A secret-dependent sample value leaks just as directly. *)
let record_cost (dist [@secret]) =
  Obs.observe latency (float_of_int dist) (* EXPECT: secret-telemetry *)
  [@@oblivious]

(* A metric update under secret control publishes the branch taken,
   even though the recorded delta is a constant. *)
let count_hits (hit [@secret]) =
  if hit then (* EXPECT: secret-branch *)
    Obs.incr pages (* EXPECT: secret-telemetry *)
  [@@oblivious]

(* Secret-derived span (or instrument) names leak through the
   registry keys of every export. *)
let span_per_target (t [@secret]) =
  Obs.with_span (string_of_int t) (fun () -> ()) (* EXPECT: secret-telemetry *)
  [@@oblivious]

(* Public-plan telemetry is exactly what the layer is for: no findings. *)
let count_round rounds_in_plan (page [@secret]) =
  Obs.add pages rounds_in_plan;
  page land 0xFF
  [@@oblivious]

(* Justified escape hatch: counting inside an argued-balanced branch. *)
let counted_balanced (bit [@secret]) =
  (if bit = 1 then Obs.incr pages else Obs.incr pages)
  [@leak_ok "balanced branch: both arms perform the identical metric update"]
  [@@oblivious]
