(* Secret trip counts: iterating a container whose identity derives from
   secrets leaks its length through timing and allocation volume.
   Iterating a public container with a secret-capturing closure is fine:
   the trip count is the public container's. *)

let sum_all (xs [@secret]) =
  List.fold_left ( + ) 0 xs (* EXPECT: secret-loop *)
  [@@oblivious]

let visit (pages [@secret]) =
  Array.iter (fun (_ : int) -> ()) pages (* EXPECT: secret-loop *)
  [@@oblivious]

let tally (counts [@secret]) =
  Hashtbl.fold (fun (_ : string) v acc -> v + acc) counts 0 (* EXPECT: secret-loop *)
  [@@oblivious]

(* Public container, secret closure: the trip count is public. *)
let scale (k [@secret]) (xs : int list) = List.map (fun x -> x * k) xs [@@oblivious]

(* String iterators are deliberately absent from the table: page-sized
   strings are length-policed at the allocation/encoding boundary. *)
let checksum (s [@secret]) =
  String.fold_left (fun acc c -> acc + Char.code c) 0 s
  [@@oblivious]
