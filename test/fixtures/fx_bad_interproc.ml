(* Cross-module flow: the secret reaches a branch two modules away
   (fx_bad_interproc -> fx_interproc_mid -> fx_interproc_helper).  The
   finding must land at the call site here, carrying the full chain.

   Per-module analysis sees nothing — [Fx_interproc_mid.relay] is just an
   opaque call — so this fixture is asserted clean in per-module mode and
   flagged only by the whole-program pass (test_lint.ml exercises both). *)

let launder (x [@secret]) =
  Fx_interproc_mid.relay x (* EXPECT: secret-branch *)
  [@@oblivious]

(* The same call on public data stays clean: the summary's sink is on
   the parameter, not ambient. *)
let public_path () = Fx_interproc_mid.relay 7 [@@oblivious]

(* A sink-free helper chain stays clean even with a secret argument. *)
let pure_path (x [@secret]) = Fx_interproc_mid.relay_pure x [@@oblivious]
