(* Mid-tier for the interprocedural fixtures: forwards its argument into
   the leaf helper, adding one frame to any reported call chain.  Also
   not [@@oblivious]: the flow only matters once an oblivious caller
   feeds it a secret. *)

let relay v = Fx_interproc_helper.clamp (v + 1)

(* Clean counterpart: routes through the sink-free helper entry. *)
let relay_pure v = Fx_interproc_helper.double v
