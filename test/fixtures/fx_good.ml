(* Known-good oblivious code: psplint must report zero findings here. *)

(* Straight-line arithmetic on a secret is fine. *)
let mask (x [@secret]) = x land 0xFF [@@oblivious]

(* Branching on public data is fine, even next to a secret. *)
let clamp limit (x [@secret]) = if limit > 0 then x mod limit else x [@@oblivious]

(* Constant-length allocation is fine; only the *length* is checked. *)
let widen (x [@secret]) =
  let b = Bytes.make 8 '\000' in
  Bytes.set b 0 (Char.chr (x land 0xFF));
  b
  [@@oblivious]

(* Arithmetic select: no branch, both inputs always evaluated. *)
let select (bit [@secret]) a b = (bit * a) + ((1 - bit) * b) [@@oblivious]

(* A secret-steered branch is allowed when justified. *)
let balanced_touch (bit [@secret]) pages =
  (if bit = 1 then Array.set pages 0 1 else Array.set pages 0 0)
  [@leak_ok "balanced branch: both arms write exactly one slot of a local array"]
  [@@oblivious]

(* Abbreviations of immediate types compare in constant time: the
   exemption expands the manifest chain before deciding immediacy. *)
type node_id = int
type id_alias = node_id

let same_node (a [@secret] : node_id) (b : node_id) = a = b [@@oblivious]
let same_alias (a [@secret] : id_alias) (b : id_alias) = a <> b [@@oblivious]

(* The compiler-generated default-select of an optional argument
   ([?(pos = 0)]) is not a secret branch: the discriminator is whether
   the caller supplied the argument — call-site syntax, public. *)
let at ?(pos = 0) (buf [@secret]) = Bytes.get buf pos [@@oblivious]

(* The regression shape of the one historical baseline entry: a secret
   supplied *as* the optional argument must not count as steering the
   default-select (whole-program mode applies [at]'s summary here). *)
let read_at (i [@secret]) buf = at ~pos:i buf [@@oblivious]

(* Non-oblivious helpers are out of scope: effects are fine here. *)
let debug_print x = Printf.printf "x=%d\n" x
