(* Known-good oblivious code: psplint must report zero findings here. *)

(* Straight-line arithmetic on a secret is fine. *)
let mask (x [@secret]) = x land 0xFF [@@oblivious]

(* Branching on public data is fine, even next to a secret. *)
let clamp limit (x [@secret]) = if limit > 0 then x mod limit else x [@@oblivious]

(* Constant-length allocation is fine; only the *length* is checked. *)
let widen (x [@secret]) =
  let b = Bytes.make 8 '\000' in
  Bytes.set b 0 (Char.chr (x land 0xFF));
  b
  [@@oblivious]

(* Arithmetic select: no branch, both inputs always evaluated. *)
let select (bit [@secret]) a b = (bit * a) + ((1 - bit) * b) [@@oblivious]

(* A secret-steered branch is allowed when justified. *)
let balanced_touch (bit [@secret]) pages =
  (if bit = 1 then Array.set pages 0 1 else Array.set pages 0 0)
  [@leak_ok "balanced branch: both arms write exactly one slot of a local array"]
  [@@oblivious]

(* Non-oblivious helpers are out of scope: effects are fine here. *)
let debug_print x = Printf.printf "x=%d\n" x
