(* The fault-injection framework and the oblivious retry/recovery path:
   deterministic failpoint schedules, client-side recovery, graceful
   degradation, and the headline invariant — under any fixed fault
   schedule, distinct queries still produce equal adversary traces
   (indistinguishability survives failure handling). *)

module F = Psp_fault.Fault
module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
open Psp_core

let key = Psp_crypto.Sha256.digest_string "fault tests"
let cost = Psp_pir.Cost_model.ibm4764
let page_size = 256

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let network ?(nodes = 200) ?(seed = 11) () =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes;
      edges = nodes + (nodes / 8);
      width = 1000.0;
      height = 1000.0;
      seed }

let g = network ()
let queries = Psp_netgen.Synthetic.random_queries g ~count:8 ~seed:5

let databases =
  lazy
    [ ("CI", DB.build_ci ~page_size g);
      ("PI", DB.build_pi ~page_size g);
      ("HY", DB.build_hy ~threshold:5 ~page_size g);
      ("PI*", DB.build_pi_star ~cluster:2 ~page_size g) ]

let server_of db = Server.create ~cost ~key (DB.files db)

(* arm a schedule, run, and always disarm afterwards *)
let with_faults arms f =
  List.iter (fun (name, sched) -> F.arm name sched) arms;
  Fun.protect ~finally:F.reset f

let close_cost got truth = Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth

let check_correct name (r : Client.result) s t =
  let truth = Psp_graph.Dijkstra.distance g s t in
  match r.Client.path with
  | None -> Alcotest.fail (Printf.sprintf "%s: no path %d->%d" name s t)
  | Some (_, got) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d->%d correct under faults" name s t)
        true (close_cost got truth)

(* ------------------------------------------------------------------ *)
(* Framework *)

let test_schedules () =
  F.reset ();
  F.arm "p.hits" (F.Hits [ 2; 4 ]);
  let fired = List.init 5 (fun _ -> F.fires "p.hits") in
  Alcotest.(check (list bool)) "hits schedule" [ false; true; false; true; false ] fired;
  Alcotest.(check int) "hit count" 5 (F.hits "p.hits");
  Alcotest.(check int) "fired count" 2 (F.fired "p.hits");
  F.arm "p.first" (F.First 2);
  let fired = List.init 4 (fun _ -> F.fires "p.first") in
  Alcotest.(check (list bool)) "first schedule" [ true; true; false; false ] fired;
  F.arm "p.never" F.Never;
  Alcotest.(check bool) "never" false (F.fires "p.never");
  F.arm "p.always" F.Always;
  Alcotest.(check bool) "always" true (F.fires "p.always");
  Alcotest.(check bool) "unarmed point never fires" false (F.fires "p.unknown");
  Alcotest.(check int) "unarmed point counts nothing" 0 (F.hits "p.unknown");
  F.reset ();
  Alcotest.(check bool) "reset disarms" false (F.active ())

let test_rewind_replays_probability () =
  F.reset ();
  F.arm ~seed:99 "p.prob" (F.Probability 0.3);
  let run () = List.init 200 (fun _ -> F.fires "p.prob") in
  let first = run () in
  F.rewind ();
  let second = run () in
  Alcotest.(check (list bool)) "same seed, same decisions" first second;
  Alcotest.(check bool) "some fired" true (List.mem true first);
  Alcotest.(check bool) "some passed" true (List.mem false first);
  F.reset ()

let test_spec_parsing () =
  F.reset ();
  List.iter
    (fun spec ->
      match F.arm_spec spec with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "spec %S rejected: %s" spec e))
    [ "a=never"; "b=always"; "c=first:3"; "d=hits:1,4,9"; "e=p:0.25" ];
  Alcotest.(check bool) "armed" true (F.active ());
  List.iter
    (fun spec ->
      match F.arm_spec spec with
      | Error _ -> ()
      | Ok () -> Alcotest.fail (Printf.sprintf "spec %S accepted" spec))
    [ "nosep"; "=always"; "x=unknown"; "x=first:-1"; "x=hits:0"; "x=p:1.5"; "x=p:zz" ];
  F.reset ()

(* ------------------------------------------------------------------ *)
(* Recovery *)

let test_survives_transient_faults () =
  (* acceptance: >= 3 injected transient fetch faults, correct answer *)
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  let s, t = queries.(0) in
  with_faults [ ("pir.fetch.transient", F.Hits [ 2; 5; 9 ]) ] (fun () ->
      let r = Client.query_nodes server g s t in
      check_correct "CI" r s t;
      Alcotest.(check int) "three retries" 3 r.Client.stats.Session.retries;
      match r.Client.status with
      | Client.Degraded { retries } -> Alcotest.(check int) "degraded retries" 3 retries
      | _ -> Alcotest.fail "expected Degraded status")

let test_corrupt_page_detected_and_recovered () =
  let db = List.assoc "PI" (Lazy.force databases) in
  let server = server_of db in
  let s, t = queries.(1) in
  with_faults [ ("pir.fetch.corrupt", F.Hits [ 3 ]) ] (fun () ->
      let r = Client.query_nodes server g s t in
      check_correct "PI" r s t;
      Alcotest.(check int) "one retry" 1 r.Client.stats.Session.retries;
      Alcotest.(check int) "corruption fired once" 1 (F.fired "pir.fetch.corrupt"))

let test_download_fault_recovered () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  let s, t = queries.(2) in
  with_faults [ ("pir.download.transient", F.Hits [ 1 ]) ] (fun () ->
      let r = Client.query_nodes server g s t in
      check_correct "CI" r s t;
      Alcotest.(check int) "one retry" 1 r.Client.stats.Session.retries)

let test_exhaustion_degrades_gracefully () =
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  let s, t = queries.(3) in
  with_faults [ ("pir.fetch.transient", F.Always) ] (fun () ->
      let retry = { Client.max_attempts = 3; base_backoff = 0.1 } in
      let r = Client.query_nodes ~retry server g s t in
      (match r.Client.status with
      | Client.Unavailable { point; attempts } ->
          Alcotest.(check string) "failing point" "pir.fetch.transient" point;
          Alcotest.(check int) "budget honoured" 3 attempts
      | _ -> Alcotest.fail "expected Unavailable status");
      Alcotest.(check bool) "no path" true (r.Client.path = None);
      Alcotest.(check int) "two retries per attempt cycle" 2 r.Client.stats.Session.retries;
      Alcotest.(check bool) "backoff charged" true
        (r.Client.stats.Session.recovery_seconds > 0.0))

let test_backoff_is_deterministic_and_query_independent () =
  let db = List.assoc "PI" (Lazy.force databases) in
  let server = server_of db in
  let arms = [ ("pir.fetch.transient", F.Hits [ 2; 6 ]) ] in
  let run (s, t) =
    with_faults arms (fun () ->
        let r = Client.query_nodes server g s t in
        ( r.Client.stats.Session.retries,
          r.Client.stats.Session.recovery_seconds,
          r.Client.stats.Session.comm_seconds ))
  in
  let r0 = run queries.(0) and r1 = run queries.(4) in
  Alcotest.(check bool) "distinct queries, identical recovery schedule" true (r0 = r1)

let test_retry_through_real_oram () =
  (* recovery also works when pages come from the square-root ORAM *)
  let small = network ~nodes:100 ~seed:3 () in
  let db = DB.build_ci ~page_size small in
  let server = Server.create ~mode:`Oblivious ~cost ~key (DB.files db) in
  let s, t = (Psp_netgen.Synthetic.random_queries small ~count:1 ~seed:8).(0) in
  with_faults
    [ ("pir.fetch.transient", F.Hits [ 2 ]); ("pir.fetch.corrupt", F.Hits [ 5 ]) ]
    (fun () ->
      let r = Client.query_nodes server small s t in
      let truth = Psp_graph.Dijkstra.distance small s t in
      (match r.Client.path with
      | Some (_, got) ->
          Alcotest.(check bool) "oram + faults correct" true (close_cost got truth)
      | None -> Alcotest.fail "no path through faulted ORAM");
      Alcotest.(check int) "two retries" 2 r.Client.stats.Session.retries)

(* ------------------------------------------------------------------ *)
(* The headline invariant *)

let fingerprint (r : Client.result) =
  Psp_pir.Trace.fingerprint r.Client.stats.Session.trace

let test_no_faults_no_drift () =
  (* with injection disabled the trace must be byte-identical to the
     fault-free execution, whether the registry is empty or armed with
     an inert schedule *)
  let db = List.assoc "CI" (Lazy.force databases) in
  let server = server_of db in
  let s, t = queries.(5) in
  F.reset ();
  let baseline = Client.query_nodes server g s t in
  Alcotest.(check bool) "served" true (baseline.Client.status = Client.Served);
  let inert =
    with_faults
      [ ("pir.fetch.transient", F.Never); ("pir.fetch.corrupt", F.Hits []) ]
      (fun () -> Client.query_nodes server g s t)
  in
  Alcotest.(check string) "inert schedule, identical view" (fingerprint baseline)
    (fingerprint inert);
  Alcotest.(check int) "no retries" 0 inert.Client.stats.Session.retries;
  let after_reset = Client.query_nodes server g s t in
  Alcotest.(check string) "after reset, identical view" (fingerprint baseline)
    (fingerprint after_reset)

(* satellite invariant: across CI, PI, HY and PI*, a shared fault
   schedule that forces retries leaves distinct (source, destination)
   pairs indistinguishable *)
let test_indistinguishable_under_failure () =
  let arms =
    [ ("pir.fetch.transient", F.Hits [ 2; 5 ]); ("pir.fetch.corrupt", F.Hits [ 7 ]) ]
  in
  List.iter
    (fun (name, db) ->
      let server = server_of db in
      let results =
        with_faults arms (fun () ->
            Array.to_list
              (Array.map
                 (fun (s, t) ->
                   (* the schedule replays from the top for every query *)
                   F.rewind ();
                   let r = Client.query_nodes server g s t in
                   check_correct name r s t;
                   r)
                 queries))
      in
      let traces = List.map (fun (r : Client.result) -> r.Client.stats.Session.trace) results in
      (match Privacy.indistinguishable traces with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s under faults: %s" name e));
      List.iter
        (fun (r : Client.result) ->
          Alcotest.(check int)
            (name ^ ": every query recovered the same way")
            3 r.Client.stats.Session.retries)
        results)
    (Lazy.force databases)

(* deterministic 32-seed sweep of the same invariant: each seed derives
   a fault schedule (transient / corrupt / tamper ordinals) and a fresh
   query pair, cycling through the schemes — every pair must leave
   byte-identical traces when the schedule replays per query *)
let test_seed_sweep () =
  let dbs = Lazy.force databases in
  for seed = 0 to 31 do
    let rng = Psp_util.Rng.create (0xfa017 + seed) in
    let pick n = 1 + Psp_util.Rng.int rng n in
    let arms =
      List.filteri
        (fun i _ -> i = seed mod 3 || Psp_util.Rng.int rng 2 = 0)
        [ ("pir.fetch.transient", F.Hits [ pick 8; 8 + pick 8 ]);
          ("pir.fetch.corrupt", F.Hits [ pick 12 ]);
          ("pir.fetch.tamper", F.Hits [ pick 12 ]) ]
    in
    let name, db = List.nth dbs (seed mod List.length dbs) in
    let qs = Psp_netgen.Synthetic.random_queries g ~count:2 ~seed in
    let run (s, t) =
      with_faults arms (fun () ->
          F.rewind ();
          (* tampering aborts the plan ([Replica_failed]: single-server
             recovery cannot trust the host again) — the abandoned
             trace prefix must still be query-independent *)
          match Client.query_nodes (server_of db) g s t with
          | r -> fingerprint r
          | exception Client.Replica_failed { reason; stats; _ } ->
              reason ^ "|" ^ Psp_pir.Trace.fingerprint stats.(0).Session.trace)
    in
    Alcotest.(check string)
      (Printf.sprintf "seed %d (%s): distinct queries, equal traces" seed name)
      (run qs.(0)) (run qs.(1))
  done

(* the same invariant as a property: random query pairs and random fault
   ordinals, every scheme — traces stay equal whenever the schedule is
   replayed per query *)
let indistinguishability_property =
  qtest ~count:12 "random fault schedule: distinct queries, equal traces"
    QCheck2.Gen.(
      let* scheme = int_range 0 3 in
      let* seed = int_range 0 9999 in
      let* ordinals = list_size (int_range 1 3) (int_range 1 12) in
      return (scheme, seed, ordinals))
    (fun (scheme, seed, ordinals) ->
      let name, db = List.nth (Lazy.force databases) scheme in
      ignore name;
      let server = server_of db in
      let qs = Psp_netgen.Synthetic.random_queries g ~count:2 ~seed in
      let traces =
        with_faults
          [ ("pir.fetch.transient", F.Hits ordinals) ]
          (fun () ->
            Array.to_list
              (Array.map
                 (fun (s, t) ->
                   F.rewind ();
                   (Client.query_nodes server g s t).Client.stats.Session.trace)
                 qs))
      in
      Privacy.indistinguishable traces = Ok ())

let () =
  Alcotest.run "fault"
    [ ( "framework",
        [ Alcotest.test_case "schedules" `Quick test_schedules;
          Alcotest.test_case "rewind replays probability" `Quick
            test_rewind_replays_probability;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing ] );
      ( "recovery",
        [ Alcotest.test_case "survives 3 transient faults" `Quick
            test_survives_transient_faults;
          Alcotest.test_case "corrupt page detected" `Quick
            test_corrupt_page_detected_and_recovered;
          Alcotest.test_case "download fault" `Quick test_download_fault_recovered;
          Alcotest.test_case "graceful exhaustion" `Quick
            test_exhaustion_degrades_gracefully;
          Alcotest.test_case "deterministic backoff" `Quick
            test_backoff_is_deterministic_and_query_independent;
          Alcotest.test_case "retry through real oram" `Slow test_retry_through_real_oram ] );
      ( "indistinguishability",
        [ Alcotest.test_case "no faults, no drift" `Quick test_no_faults_no_drift;
          Alcotest.test_case "equal traces under shared schedule" `Slow
            test_indistinguishable_under_failure;
          Alcotest.test_case "32-seed schedule sweep" `Slow test_seed_sweep;
          indistinguishability_property ] ) ]
