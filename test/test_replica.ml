(* Replicated serving: authenticated pages, the per-replica circuit
   breaker, and oblivious whole-plan failover.  The headline acceptance
   invariant — for a fixed fault schedule, every replica's observed
   trace (complete plan or abandoned prefix) is byte-identical across
   distinct queries, single and batched — plus: a tampered page is
   detected, survived via failover at status <= Degraded, and never
   yields a wrong path. *)

module F = Psp_fault.Fault
module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module Breaker = Psp_pir.Breaker
module RS = Psp_pir.Replica_set
open Psp_core

let key = Psp_crypto.Sha256.digest_string "replica tests"
let cost = Psp_pir.Cost_model.ibm4764
let page_size = 256

let network ?(nodes = 150) ?(seed = 11) () =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes;
      edges = nodes + (nodes / 8);
      width = 1000.0;
      height = 1000.0;
      seed }

let g = network ()
let queries = Psp_netgen.Synthetic.random_queries g ~count:12 ~seed:5
let db = lazy (DB.build_ci ~page_size g)

(* a fresh set per run: replica selection is public breaker state, and
   the equality tests must not let one query's failovers change the
   next query's starting replica *)
let rset ?(replicas = 2) () =
  RS.create ~cost ~key ~replicas (DB.files (Lazy.force db))

let with_faults arms f =
  List.iter (fun (name, sched) -> F.arm name sched) arms;
  Fun.protect ~finally:F.reset f

let close_cost got truth = Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth

let check_correct name (r : Client.result) s t =
  let truth = Psp_graph.Dijkstra.distance g s t in
  match r.Client.path with
  | None -> Alcotest.fail (Printf.sprintf "%s: no path %d->%d" name s t)
  | Some (_, got) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d->%d correct" name s t)
        true (close_cost got truth)

let fp (s : Session.stats) = Psp_pir.Trace.fingerprint s.Session.trace

(* every trace a replicated query exposed, replica by replica: the
   abandoned attempts (prefixes) in order, then the serving attempt *)
let attempt_fingerprints (rep : Client.replicated) =
  List.map
    (fun (a : Client.abandoned) ->
      (a.Client.on_replica, a.Client.reason, Array.map fp a.Client.attempt_stats))
    rep.Client.abandoned
  @ [ ( rep.Client.replica,
        "served",
        Array.map (fun (r : Client.result) -> fp r.Client.stats) rep.Client.results ) ]

(* ------------------------------------------------------------------ *)
(* Authenticated pages *)

let test_seal_and_authenticate () =
  let f = PF.create ~name:"auth" ~page_size:64 in
  let no = PF.append f (Bytes.of_string "payload") in
  Alcotest.(check bool) "fresh file unsealed" false (PF.sealed f);
  PF.seal f ~key;
  Alcotest.(check bool) "sealed" true (PF.sealed f);
  Alcotest.(check int) "tag size" PF.tag_size (Bytes.length (PF.page_tag f no));
  let page = PF.read f no in
  Alcotest.(check bool) "genuine page verifies" true (PF.authenticate f ~key no page);
  (* a Byzantine host can recompute the CRC but not the tag *)
  let forged = Bytes.copy page in
  Bytes.set forged 0 (Char.chr (Char.code (Bytes.get forged 0) lxor 0x80));
  Alcotest.(check bool) "tampered page rejected" false
    (PF.authenticate f ~key no forged);
  Alcotest.(check bool) "wrong key rejected" false
    (PF.authenticate f ~key:(Psp_crypto.Sha256.digest_string "other") no page);
  (* resealing under the same key keeps the tags; appending drops them *)
  let tag = PF.page_tag f no in
  PF.seal f ~key;
  Alcotest.(check bytes) "reseal is a no-op" tag (PF.page_tag f no);
  ignore (PF.append_blank f);
  Alcotest.(check bool) "append unseals" false (PF.sealed f)

let test_tags_survive_save_load () =
  let f = PF.create ~name:"roundtrip" ~page_size:64 in
  for i = 0 to 4 do
    ignore (PF.append f (Bytes.of_string (Printf.sprintf "page %d" i)))
  done;
  PF.seal f ~key;
  let path = Filename.temp_file "psp_replica" ".pages" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      PF.save f ~path;
      let f' = PF.load_exn ~path in
      Alcotest.(check bool) "loaded file still sealed" true (PF.sealed f');
      for no = 0 to 4 do
        Alcotest.(check bytes)
          (Printf.sprintf "tag %d preserved" no)
          (PF.page_tag f no) (PF.page_tag f' no);
        Alcotest.(check bool)
          (Printf.sprintf "page %d authenticates after reload" no)
          true
          (PF.authenticate f' ~key no (PF.read f' no))
      done)

(* ------------------------------------------------------------------ *)
(* Breaker state machine *)

let test_breaker_state_machine () =
  let b = Breaker.create ~threshold:2 ~cooldown:1.0 ~seed:0 () in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed admits" true (Breaker.available b ~now:0.0);
  Breaker.record_failure b ~now:0.0;
  Alcotest.(check bool) "below threshold stays closed" true
    (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now:0.0;
  Alcotest.(check bool) "threshold trips open" true (Breaker.state b = Breaker.Open);
  let until = Breaker.cooldown_until b in
  Alcotest.(check bool) "cooldown within jittered base" true
    (until >= 0.75 && until < 1.25);
  Alcotest.(check bool) "open shuns" false (Breaker.available b ~now:(until /. 2.0));
  Alcotest.(check bool) "cooldown elapsed admits probe" true
    (Breaker.available b ~now:until);
  Alcotest.(check bool) "probe state" true (Breaker.state b = Breaker.Half_open);
  (* a failed probe re-opens with a doubled (jittered) cooldown *)
  Breaker.record_failure b ~now:until;
  Alcotest.(check bool) "failed probe re-opens" true (Breaker.state b = Breaker.Open);
  let until2 = Breaker.cooldown_until b in
  Alcotest.(check bool) "backoff grows" true
    (until2 -. until >= 2.0 *. 0.75 && until2 -. until < 2.0 *. 1.25);
  Alcotest.(check bool) "probe again" true (Breaker.available b ~now:until2);
  Breaker.record_success b;
  Alcotest.(check bool) "success closes" true (Breaker.state b = Breaker.Closed);
  (* and resets the streak: one new failure is below threshold again *)
  Breaker.record_failure b ~now:until2;
  Alcotest.(check bool) "streak reset" true (Breaker.state b = Breaker.Closed)

let test_replica_set_selection () =
  let set = rset ~replicas:3 () in
  Alcotest.(check int) "width" 3 (RS.width set);
  Alcotest.(check (option int)) "starts at replica 0" (Some 0) (RS.select set);
  RS.record_failure set 0;
  Alcotest.(check (option int)) "failure moves on" (Some 1) (RS.select set);
  RS.record_success set 1;
  Alcotest.(check (option int)) "success sticks" (Some 1) (RS.select set);
  (* trip every breaker: threshold is 3 by default *)
  for _ = 1 to 3 do
    RS.record_failure set 0;
    RS.record_failure set 1;
    RS.record_failure set 2
  done;
  Alcotest.(check (option int)) "all open: nobody serves" None (RS.select set);
  (match RS.select_exn set with
  | exception RS.No_replica_available -> ()
  | i -> Alcotest.fail (Printf.sprintf "expected No_replica_available, got %d" i));
  (* simulated time heals: past every cooldown a probe is admitted *)
  RS.advance set 1000.0;
  Alcotest.(check bool) "cooldown elapsed readmits" true (RS.select set <> None)

(* ------------------------------------------------------------------ *)
(* Failover *)

let test_tamper_survived_via_failover () =
  let set = rset () in
  let s, t = queries.(0) in
  with_faults [ ("pir.fetch.tamper", F.First 1) ] (fun () ->
      let rep = Client.query_nodes_replicated set g s t in
      let r = rep.Client.results.(0) in
      check_correct "tamper" r s t;
      Alcotest.(check int) "one failover" 1 rep.Client.failovers;
      Alcotest.(check int) "served by replica 1" 1 rep.Client.replica;
      (match rep.Client.abandoned with
      | [ a ] ->
          Alcotest.(check int) "abandoned replica 0" 0 a.Client.on_replica;
          Alcotest.(check bool) "classified as tampering" true
            (String.length a.Client.reason >= 16
            && String.sub a.Client.reason 0 16 = "pir.fetch.tamper")
      | l -> Alcotest.fail (Printf.sprintf "expected 1 abandoned, got %d" (List.length l)));
      (match r.Client.status with
      | Client.Degraded { retries } ->
          Alcotest.(check int) "failover counted as retry" 1 retries
      | _ -> Alcotest.fail "expected Degraded");
      Alcotest.(check bool) "switch cost charged" true
        (rep.Client.failover_seconds > 0.0))

let test_tamper_never_wrong_path () =
  (* even under sustained tampering the client either serves the right
     path or reports Unavailable — never a silently wrong answer *)
  let set = rset ~replicas:3 () in
  let s, t = queries.(1) in
  let truth = Psp_graph.Dijkstra.distance g s t in
  with_faults [ ("pir.fetch.tamper", F.Probability 0.2) ] (fun () ->
      for _ = 1 to 5 do
        match Client.query_nodes_replicated set g s t with
        | exception RS.No_replica_available ->
            (* every breaker open is a legitimate outage; let simulated
               time pass so the set can heal *)
            RS.advance set 1000.0
        | rep -> (
            let r = rep.Client.results.(0) in
            match (r.Client.status, r.Client.path) with
            | (Client.Served | Client.Degraded _), Some (_, got) ->
                Alcotest.(check bool) "served answers are right" true
                  (close_cost got truth)
            | (Client.Served | Client.Degraded _), None ->
                Alcotest.fail "served without a path"
            | Client.Unavailable _, None -> ()
            | Client.Unavailable _, Some _ -> Alcotest.fail "unavailable with a path"
            | Client.Unknown_scheme _, _ -> Alcotest.fail "unknown scheme")
      done)

let test_down_burst_survived () =
  let set = rset () in
  let s, t = queries.(2) in
  (* both replicas answer dead once each, then the burst passes *)
  with_faults [ ("pir.replica.down", F.First 2) ] (fun () ->
      let rep = Client.query_nodes_replicated set g s t in
      check_correct "down burst" rep.Client.results.(0) s t;
      Alcotest.(check int) "two failovers" 2 rep.Client.failovers;
      Alcotest.(check int) "back on replica 0" 0 rep.Client.replica)

let test_timeout_fails_over () =
  let set = rset () in
  let s, t = queries.(3) in
  (* three spikes of 10 RTT pass the 25-RTT budget on replica 0 only *)
  with_faults [ ("pir.replica.latency", F.First 3) ] (fun () ->
      let rep = Client.query_nodes_replicated set g s t in
      check_correct "timeout" rep.Client.results.(0) s t;
      Alcotest.(check int) "one failover" 1 rep.Client.failovers;
      match rep.Client.abandoned with
      | [ a ] ->
          Alcotest.(check string) "classified as timeout" "pir.replica.timeout(0)"
            a.Client.reason
      | _ -> Alcotest.fail "expected one abandoned attempt")

let test_all_replicas_down_unavailable () =
  let set = rset () in
  let s, t = queries.(4) in
  with_faults [ ("pir.replica.down", F.Always) ] (fun () ->
      let rep = Client.query_nodes_replicated ~max_failovers:4 set g s t in
      let r = rep.Client.results.(0) in
      Alcotest.(check bool) "no path" true (r.Client.path = None);
      match r.Client.status with
      | Client.Unavailable { point; attempts } ->
          Alcotest.(check bool) "outage named" true
            (String.length point >= 16 && String.sub point 0 16 = "pir.replica.down");
          (* max_failovers 4 admits the initial attempt plus 4 replays *)
          Alcotest.(check int) "budget honoured" 5 attempts
      | _ -> Alcotest.fail "expected Unavailable")

let test_retry_exhaustion_fails_over () =
  (* transient faults exhaust the per-replica retry budget on replica 0;
     the plan then replays cleanly on replica 1 (rewind is per query,
     not per attempt — the schedule keeps advancing across attempts) *)
  let set = rset () in
  let s, t = queries.(5) in
  with_faults [ ("pir.fetch.transient", F.First 1000) ] (fun () ->
      let retry = { Client.max_attempts = 2; base_backoff = 0.1 } in
      let rep = Client.query_nodes_replicated ~retry set g s t in
      let r = rep.Client.results.(0) in
      Alcotest.(check bool) "eventually unavailable or served" true
        (match r.Client.status with
        | Client.Unavailable _ | Client.Degraded _ | Client.Served -> true
        | _ -> false);
      Alcotest.(check bool) "every replica was tried" true (rep.Client.failovers >= 2))

(* ------------------------------------------------------------------ *)
(* The acceptance invariant: per-replica trace equality *)

(* under a fixed schedule, replayed from the top for every query, each
   replica sees byte-identical traces for distinct queries — both the
   abandoned prefixes and the serving attempt *)
let test_traces_equal_across_queries () =
  let schedules =
    [ ("tamper mid-plan", [ ("pir.fetch.tamper", F.Hits [ 4 ]) ]);
      ("outage then spike",
       [ ("pir.replica.down", F.First 1); ("pir.replica.latency", F.Hits [ 9 ]) ]);
      ("tamper after retry",
       [ ("pir.fetch.transient", F.Hits [ 2 ]); ("pir.fetch.tamper", F.Hits [ 6 ]) ]) ]
  in
  List.iter
    (fun (label, arms) ->
      let run (s, t) =
        with_faults arms (fun () ->
            let set = rset () in
            let rep = Client.query_nodes_replicated set g s t in
            check_correct label rep.Client.results.(0) s t;
            attempt_fingerprints rep)
      in
      let reference = run queries.(0) in
      Alcotest.(check bool)
        (label ^ ": schedule actually exercised failover") true
        (List.length reference >= 2);
      for i = 1 to 5 do
        let other = run queries.(i) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: query %d, identical per-replica views" label i)
          true
          (reference = other)
      done)
    schedules

(* the same invariant for batches, plus mutual indistinguishability of
   the members inside every attempt, on every replica *)
let test_batch_traces_equal_and_members_indistinguishable () =
  let arms = [ ("pir.fetch.tamper", F.Hits [ 5 ]) ] in
  let run pairs =
    with_faults arms (fun () ->
        let set = rset () in
        let rep = Client.query_nodes_batch_replicated set g pairs in
        Array.iteri
          (fun i (r : Client.result) ->
            let s, t = pairs.(i) in
            check_correct (Printf.sprintf "batch[%d]" i) r s t)
          rep.Client.results;
        (* members of every attempt — abandoned or serving — must be
           mutually indistinguishable: the replica saw one merged pass *)
        List.iter
          (fun (a : Client.abandoned) ->
            let traces =
              Array.to_list
                (Array.map (fun (s : Session.stats) -> s.Session.trace)
                   a.Client.attempt_stats)
            in
            match Privacy.indistinguishable traces with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("abandoned attempt members leak: " ^ e))
          rep.Client.abandoned;
        let traces =
          Array.to_list
            (Array.map
               (fun (r : Client.result) -> r.Client.stats.Session.trace)
               rep.Client.results)
        in
        (match Privacy.indistinguishable traces with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("serving attempt members leak: " ^ e));
        attempt_fingerprints rep)
  in
  let reference = run (Array.sub queries 0 4) in
  Alcotest.(check bool) "failover exercised" true (List.length reference >= 2);
  let other = run (Array.sub queries 4 4) in
  Alcotest.(check bool) "different batches, identical per-replica views" true
    (reference = other)

(* 32-seed sweep: random schedules over the replica failpoints, random
   query pairs — the per-replica views stay equal whenever the schedule
   replays per query *)
let test_seed_sweep () =
  for seed = 0 to 31 do
    let rng = Psp_util.Rng.create (0x5eed + seed) in
    let pick n = 1 + Psp_util.Rng.int rng n in
    let arms =
      List.filteri
        (fun i _ -> i = seed mod 3 || Psp_util.Rng.int rng 2 = 0)
        [ ("pir.fetch.tamper", F.Hits [ pick 10 ]);
          ("pir.replica.down", F.Hits [ pick 4 ]);
          ("pir.replica.latency", F.Hits [ pick 8; 8 + pick 8; 16 + pick 8 ]) ]
    in
    let qs = Psp_netgen.Synthetic.random_queries g ~count:2 ~seed in
    let run (s, t) =
      with_faults arms (fun () ->
          let set = rset ~replicas:3 () in
          attempt_fingerprints (Client.query_nodes_replicated set g s t))
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: distinct queries, equal per-replica views" seed)
      true
      (run qs.(0) = run qs.(1))
  done

let () =
  Alcotest.run "replica"
    [ ( "authenticated pages",
        [ Alcotest.test_case "seal and authenticate" `Quick test_seal_and_authenticate;
          Alcotest.test_case "tags survive save/load" `Quick
            test_tags_survive_save_load ] );
      ( "breaker",
        [ Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "replica set selection" `Quick test_replica_set_selection ] );
      ( "failover",
        [ Alcotest.test_case "tamper survived" `Quick test_tamper_survived_via_failover;
          Alcotest.test_case "tamper never wrong" `Quick test_tamper_never_wrong_path;
          Alcotest.test_case "down burst survived" `Quick test_down_burst_survived;
          Alcotest.test_case "timeout fails over" `Quick test_timeout_fails_over;
          Alcotest.test_case "all replicas down" `Quick
            test_all_replicas_down_unavailable;
          Alcotest.test_case "retry exhaustion fails over" `Quick
            test_retry_exhaustion_fails_over ] );
      ( "trace equality",
        [ Alcotest.test_case "equal across queries" `Slow
            test_traces_equal_across_queries;
          Alcotest.test_case "batched: equal and indistinguishable" `Slow
            test_batch_traces_equal_and_members_indistinguishable;
          Alcotest.test_case "32-seed sweep" `Slow test_seed_sweep ] ) ]
